"""Flow model: bottleneck service times, derating, traffic accounting."""

import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.dram_timing import TemperaturePhase
from repro.hmc.flow import HmcFlowModel, TrafficDemand


@pytest.fixture
def flow():
    return HmcFlowModel(HMC_2_0)


class TestTrafficDemand:
    def test_flit_accounting_matches_table1(self):
        d = TrafficDemand(reads=1, writes=1, host_atomics=1, pim_ops=1,
                          pim_ops_ret=1)
        # req: read 1 + write 5 + host (1+5) + pim 2 + pim_ret 2
        assert d.request_flits() == 1 + 5 + 6 + 2 + 2
        # rsp: read 5 + write 1 + host (5+1) + pim 1 + pim_ret 2
        assert d.response_flits() == 5 + 1 + 6 + 1 + 2

    def test_internal_bytes(self):
        d = TrafficDemand(reads=2, writes=1, host_atomics=1, pim_ops=3)
        # (2+1+2)*64 external-backed + 3*32 PIM internal
        assert d.internal_dram_bytes() == 5 * 64 + 96

    def test_external_payload(self):
        d = TrafficDemand(reads=1, writes=1, host_atomics=1, pim_ops_ret=2)
        assert d.external_data_bytes() == 64 * 4 + 32

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficDemand(reads=-1)


class TestServiceTime:
    def test_balanced_mix_reaches_peak_data_bandwidth(self, flow):
        # Equal reads/writes: req and rsp lanes both at 96 B per 128 B of
        # payload -> 320 GB/s peak (Sec. III-B).
        n = 100_000
        d = TrafficDemand(reads=n, writes=n)
        t = flow.service_time_ns(d)
        data_rate = d.external_data_bytes() / t
        assert data_rate == pytest.approx(320.0, rel=0.01)

    def test_read_only_is_response_lane_bound(self, flow):
        n = 10_000
        t = flow.service_time_ns(TrafficDemand(reads=n))
        # rsp lane: 80 B per read at 240 GB/s
        assert t == pytest.approx(n * 80 / 240.0, rel=0.01)

    def test_empty_demand_is_instant(self, flow):
        assert flow.service_time_ns(TrafficDemand()) == 0.0

    def test_links_bound_at_normal_phase(self, flow):
        # DRAM nominal capacity exceeds the link ceiling (Sec. III-B).
        assert flow.dram_capacity_gbs() > 320.0

    def test_pim_heavy_demand_hits_fu_bound_eventually(self):
        flow = HmcFlowModel(HMC_2_0, fu_rate_per_vault_gops=0.001)
        d = TrafficDemand(pim_ops=10_000)
        t = flow.service_time_ns(d)
        assert t == pytest.approx(10_000 / (32 * 0.001))


class TestConstructorValidation:
    def test_internal_bandwidth_must_be_positive(self):
        with pytest.raises(ValueError):
            HmcFlowModel(HMC_2_0, internal_peak_gbs=0.0)

    def test_fu_rate_must_be_positive(self):
        # Regression: a zero/negative FU rate used to be accepted and only
        # surfaced later as a ZeroDivisionError inside service_time_ns on
        # the first PIM op, mid-simulation.
        with pytest.raises(ValueError):
            HmcFlowModel(HMC_2_0, fu_rate_per_vault_gops=0.0)
        with pytest.raises(ValueError):
            HmcFlowModel(HMC_2_0, fu_rate_per_vault_gops=-1.0)


class TestDerating:
    def test_normal_phase_no_derating(self, flow):
        flow.update_phase(70.0)
        assert flow.derating() == pytest.approx(1.0)

    def test_extended_phase_derates(self, flow):
        flow.update_phase(90.0)
        d = flow.derating()
        assert 0.70 < d < 0.80  # 0.8 freq x refresh factor

    def test_critical_phase_derates_more(self, flow):
        flow.update_phase(100.0)
        assert flow.derating() < 0.60

    def test_service_time_scales_inversely(self, flow):
        d = TrafficDemand(reads=1000, writes=1000)
        t_cool = flow.service_time_ns(d)
        flow.update_phase(90.0)
        t_hot = flow.service_time_ns(d)
        assert t_hot == pytest.approx(t_cool / flow.derating())

    def test_shutdown_raises(self, flow):
        flow.update_phase(110.0)
        assert flow.is_shutdown
        with pytest.raises(RuntimeError):
            flow.service_time_ns(TrafficDemand(reads=1))


class TestRatesAndRecording:
    def test_traffic_rates_payload_equivalence(self, flow):
        # Balanced full-bandwidth mix: payload-equivalent external == 320.
        n = 100_000
        d = TrafficDemand(reads=n, writes=n)
        t = flow.service_time_ns(d)
        ext, internal, pim = flow.traffic_rates(d, t)
        assert ext == pytest.approx(320.0, rel=0.01)
        assert internal == pytest.approx(320.0, rel=0.01)
        assert pim == 0.0

    def test_pim_rate(self, flow):
        d = TrafficDemand(pim_ops=1300)
        ext, internal, pim = flow.traffic_rates(d, 1000.0)
        assert pim == pytest.approx(1.3)

    def test_zero_elapsed(self, flow):
        assert flow.traffic_rates(TrafficDemand(reads=1), 0.0) == (0, 0, 0)

    def test_record_accumulates_ledger(self, flow):
        d = TrafficDemand(reads=2, writes=1, host_atomics=1, pim_ops=3)
        flow.record(d, 100.0)
        from repro.hmc.packet import PacketType

        led = flow.stats.ledger
        assert led.transactions[PacketType.READ64] == 3  # reads + host atomic
        assert led.transactions[PacketType.WRITE64] == 2
        assert led.transactions[PacketType.PIM] == 3
        assert flow.stats.pim_ops == 3
        assert flow.stats.host_atomics == 1

    def test_warning_flag(self, flow):
        flow.set_thermal_warning(True)
        assert flow.thermal_warning
