"""Cross-validation: event-level cube vs flow model.

The flow model's bottleneck arithmetic must agree with the event-level
cube's emergent throughput when the cube's resources are well balanced.
These tests drive identical transaction mixes through both and compare
bulk service times.

A known, deliberate divergence: deterministic round-robin link striping
interacts pathologically with strictly alternating read/write issue (all
reads land on two links, all writes on the other two, halving effective
per-direction bandwidth). The flow model assumes balanced striping, so
the cross-validation issues in randomized order — and one test documents
the pathological case.
"""

import random

import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.flow import HmcFlowModel, TrafficDemand
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import PacketType, Request

N = 2000


def drive_cube(transactions):
    cube = HmcCube(HMC_2_0)
    last = 0.0
    for ptype, addr in transactions:
        if ptype is PacketType.WRITE64:
            rsp = cube.submit(Request(ptype, address=addr), 0.0,
                              payload=b"\0" * 64)
        elif ptype is PacketType.PIM:
            inst = PimInstruction(PimOpcode.ADD_IMM, address=addr, immediate=1)
            rsp = cube.submit(Request(ptype, address=addr, pim=inst), 0.0)
        else:
            rsp = cube.submit(Request(ptype, address=addr), 0.0)
        last = max(last, rsp.complete_time_ns)
    return last


class TestAgreement:
    def test_balanced_read_write_mix(self):
        txns = [(PacketType.READ64, i * 32) for i in range(N)] + [
            (PacketType.WRITE64, (1 << 22) + i * 32) for i in range(N)
        ]
        random.Random(7).shuffle(txns)
        t_cube = drive_cube(txns)
        t_flow = HmcFlowModel(HMC_2_0).service_time_ns(
            TrafficDemand(reads=N, writes=N)
        )
        assert t_cube == pytest.approx(t_flow, rel=0.25)

    def test_pure_pim_mix(self):
        txns = [(PacketType.PIM, i * 32) for i in range(N)]
        t_cube = drive_cube(txns)
        t_flow = HmcFlowModel(HMC_2_0).service_time_ns(
            TrafficDemand(pim_ops=N)
        )
        assert t_cube == pytest.approx(t_flow, rel=0.25)

    def test_read_only_mix(self):
        txns = [(PacketType.READ64, i * 32) for i in range(N)]
        t_cube = drive_cube(txns)
        t_flow = HmcFlowModel(HMC_2_0).service_time_ns(TrafficDemand(reads=N))
        assert t_cube == pytest.approx(t_flow, rel=0.25)

    def test_mixed_pim_and_reads(self):
        txns = [(PacketType.READ64, i * 32) for i in range(N)] + [
            (PacketType.PIM, (1 << 22) + i * 32) for i in range(N)
        ]
        random.Random(3).shuffle(txns)
        t_cube = drive_cube(txns)
        t_flow = HmcFlowModel(HMC_2_0).service_time_ns(
            TrafficDemand(reads=N, pim_ops=N)
        )
        assert t_cube == pytest.approx(t_flow, rel=0.25)


class TestKnownDivergence:
    def test_alternating_issue_defeats_round_robin_striping(self):
        """Strict read/write alternation phase-locks with the 4-link
        round-robin: reads mono-polize two links' response lanes while
        writes monopolize the other two's request lanes — the cube runs
        ~1.7x slower than the balanced-striping flow estimate."""
        txns = []
        for i in range(N):
            txns.append((PacketType.READ64, i * 32))
            txns.append((PacketType.WRITE64, (1 << 22) + i * 32))
        t_cube = drive_cube(txns)
        t_flow = HmcFlowModel(HMC_2_0).service_time_ns(
            TrafficDemand(reads=N, writes=N)
        )
        assert t_cube > 1.4 * t_flow
