"""Discrete SW-DynT end to end: cube ERRSTAT → interrupt → token pool.

The fluid simulator models SW-DynT's effect as a fraction; this test
exercises the *discrete* mechanism the paper describes (Fig. 7) against
the event-level cube: response packets carry the thermal warning bit, the
GPU runtime's interrupt handler shrinks the PIM token pool, and
subsequently launched CUDA blocks fall back to the shadow non-PIM code.
"""

import pytest

from repro.core.token_pool import PimTokenPool
from repro.gpu.runtime import CodeVersion, GpuRuntime, ThreadBlockManager
from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import PacketType, Request


class TestDiscreteLoop:
    def _system(self, pool_size=8, cf=4):
        cube = HmcCube(HMC_2_0)
        manager = ThreadBlockManager(PimTokenPool(size=pool_size))
        runtime = GpuRuntime(manager=manager, control_factor=cf)
        return cube, manager, runtime

    def _run_block(self, cube, manager, runtime, now, atomics=4):
        """Launch a block, issue its memory traffic, complete it.

        Returns the block record and whether a thermal interrupt fired.
        """
        rec = manager.launch_block(now_s=now)
        interrupted = False
        for i in range(atomics):
            addr = (rec.block_id * 64 + i) * 32
            if rec.version is CodeVersion.PIM:
                inst = PimInstruction(PimOpcode.ADD_IMM, address=addr,
                                      immediate=1)
                rsp = cube.submit(
                    Request(PacketType.PIM, address=addr, pim=inst), now * 1e9
                )
            else:
                rsp = cube.submit(
                    Request(PacketType.READ64, address=addr), now * 1e9
                )
            if runtime.on_response_errstat(rsp.errstat, now_s=now):
                interrupted = True
        manager.complete_block(rec.block_id, now_s=now)
        return rec, interrupted

    def test_cool_cube_never_interrupts(self):
        cube, manager, runtime = self._system()
        for i in range(10):
            _rec, interrupted = self._run_block(cube, manager, runtime, i * 1e-3)
            assert not interrupted
        assert manager.pool.size == 8

    def test_warning_shrinks_pool_and_switches_code_version(self):
        cube, manager, runtime = self._system(pool_size=4, cf=2)

        # Phase 1: cool — every block gets the PIM entry point.
        rec, _ = self._run_block(cube, manager, runtime, 0.0)
        assert rec.version is CodeVersion.PIM

        # Phase 2: the cube overheats; ERRSTAT starts carrying 0x01.
        cube.set_thermal_warning(True)
        _rec, interrupted = self._run_block(cube, manager, runtime, 1e-3)
        assert interrupted
        assert manager.pool.size < 4

        # Keep handling warnings until the pool is exhausted.
        for i in range(6):
            self._run_block(cube, manager, runtime, (2 + i) * 1e-3)
        assert manager.pool.size == 0

        # Phase 3: cube cooled — but the pool only down-tunes, so new
        # blocks run the shadow non-PIM kernel from here on.
        cube.set_thermal_warning(False)
        rec, _ = self._run_block(cube, manager, runtime, 20e-3)
        assert rec.version is CodeVersion.NON_PIM

    def test_pim_traffic_actually_stops_after_throttling(self):
        cube, manager, runtime = self._system(pool_size=2, cf=2)
        cube.set_thermal_warning(True)
        for i in range(8):
            self._run_block(cube, manager, runtime, i * 1e-3)
        pim_before = cube.total_pim_ops()
        cube.set_thermal_warning(False)
        for i in range(4):
            self._run_block(cube, manager, runtime, (10 + i) * 1e-3)
        assert cube.total_pim_ops() == pim_before  # no PIM issued anymore

    def test_interrupt_count_matches_warned_responses_handled(self):
        cube, manager, runtime = self._system(pool_size=100, cf=1)
        cube.set_thermal_warning(True)
        _rec, _ = self._run_block(cube, manager, runtime, 0.0, atomics=5)
        assert runtime.interrupts_handled == 5
