"""Integration: full pipeline invariants across subsystems.

These tests wire real workloads, the cache model, the flow model, the RC
thermal network, and the CoolPIM policies together on a small graph and
check the cross-cutting behaviours the paper's contribution depends on.
"""

import pytest

from repro.core import CoolPimSystem
from repro.core.policies import make_policy
from repro.graph import get_dataset
from repro.workloads import get_workload
from repro.workloads.dc import DegreeCentrality


@pytest.fixture(scope="module")
def graph():
    return get_dataset("ldbc-small")


@pytest.fixture(scope="module")
def hot_results(graph):
    """dc at a length long enough to trip the thermal loop (~10 ms)."""
    system = CoolPimSystem()
    w = DegreeCentrality()
    w.repeats = 900
    return system.run_all_policies(w, graph)


class TestClosedLoop:
    def test_naive_overheats_coolpim_does_not(self, hot_results):
        naive = hot_results["naive-offloading"]
        assert naive.peak_dram_temp_c > 85.0
        for name in ("coolpim-sw", "coolpim-hw"):
            cool = hot_results[name]
            assert cool.peak_dram_temp_c < naive.peak_dram_temp_c

    def test_coolpim_throttles_offloading(self, hot_results):
        naive = hot_results["naive-offloading"]
        for name in ("coolpim-sw", "coolpim-hw"):
            cool = hot_results[name]
            assert cool.offload_fraction < naive.offload_fraction
            assert cool.avg_pim_rate_ops_ns < naive.avg_pim_rate_ops_ns

    def test_naive_spends_time_in_derated_phases(self, hot_results):
        naive = hot_results["naive-offloading"]
        derated = (naive.phase_time_s["EXTENDED"]
                   + naive.phase_time_s["CRITICAL"])
        assert derated > 0.0

    def test_warnings_only_fire_above_threshold(self, hot_results):
        base = hot_results["non-offloading"]
        if base.peak_dram_temp_c < 85.0:
            assert base.thermal_warnings == 0

    def test_everyone_beats_or_matches_thermal_runaway(self, hot_results):
        base = hot_results["non-offloading"]
        for name in ("coolpim-sw", "coolpim-hw"):
            assert hot_results[name].speedup_over(base) >= 1.0

    def test_ideal_bound(self, hot_results):
        base = hot_results["non-offloading"]
        ideal = hot_results["ideal-thermal"].speedup_over(base)
        for name in ("naive-offloading", "coolpim-sw", "coolpim-hw"):
            assert hot_results[name].speedup_over(base) <= ideal + 1e-9


class TestDeterminism:
    def test_same_seed_same_results(self, graph):
        system = CoolPimSystem()
        w1 = get_workload("bfs-dwc", seed=3)
        w1.num_sources = 4
        w2 = get_workload("bfs-dwc", seed=3)
        w2.num_sources = 4
        r1 = system.run(w1, graph, "coolpim-hw")
        r2 = system.run(w2, graph, "coolpim-hw")
        assert r1.runtime_s == pytest.approx(r2.runtime_s)
        assert r1.pim_ops == r2.pim_ops
        assert r1.peak_dram_temp_c == pytest.approx(r2.peak_dram_temp_c)


class TestCrossWorkload:
    @pytest.mark.parametrize("name", ["bfs-twc", "sssp-dwc", "kcore"])
    def test_each_workload_runs_under_each_policy(self, graph, name):
        system = CoolPimSystem()
        w = get_workload(name)
        for attr, val in (("num_sources", 2), ("repeats", 1),
                          ("iterations", 3)):
            if hasattr(w, attr):
                setattr(w, attr, val)
        res = system.run_all_policies(w, graph)
        base = res["non-offloading"]
        assert base.runtime_s > 0
        for r in res.values():
            assert r.total_atomics == base.total_atomics
