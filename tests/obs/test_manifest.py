"""Run manifests: collection, persistence, reporting."""

import json

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA_ID, RunManifest, format_report


class TestCollect:
    def test_fills_provenance_automatically(self):
        m = RunManifest.collect(
            command="test", config={"a": 1}, seed=7,
            wall_duration_s=1.5, sim_duration_s=0.001,
            outputs=["out.txt"], note="hi",
        )
        assert m.command == "test"
        assert m.seed == 7
        assert len(m.code_fingerprint) >= 16
        assert m.package_version
        assert m.created_unix > 0
        assert set(m.host) == {"hostname", "platform", "python"}
        assert m.outputs == ["out.txt"]
        assert m.extra == {"note": "hi"}

    def test_fingerprint_matches_job_cache_key(self):
        from repro.service.fingerprint import code_fingerprint

        m = RunManifest.collect(command="test")
        assert m.code_fingerprint == code_fingerprint()


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        m = RunManifest.collect(command="roundtrip", seed=3, config={"k": "v"})
        path = m.write(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == m
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA_ID

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="not a manifest"):
            RunManifest.load(path)

    def test_load_ignores_unknown_fields(self, tmp_path):
        m = RunManifest.collect(command="fwd")
        doc = m.to_dict()
        doc["future_field"] = {"x": 1}  # written by a later schema rev
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(doc))
        assert RunManifest.load(path).command == "fwd"


class TestReport:
    def test_report_mentions_key_facts(self):
        m = RunManifest.collect(
            command="repro trace", seed=5, config={"workload": "kcore"},
            wall_duration_s=0.25, outputs=["trace.json"],
        )
        text = format_report(m)
        assert "repro trace" in text
        assert "seed:        5" in text
        assert "workload: kcore" in text
        assert "trace.json" in text
        assert m.code_fingerprint[:16] in text
