"""Chrome trace-event export: rehoming, metadata, structural validation."""

import json

import pytest

from repro.obs.chrome import (
    SIM_PID,
    SIM_TID,
    TraceValidationError,
    export_chrome_trace,
    to_chrome_events,
    validate_chrome_trace,
)
from repro.obs.tracer import Tracer


def _sample_records():
    tr = Tracer(enabled=True)
    with tr.span("work", cat="engine", n=3):
        pass
    tr.instant("warn", cat="core")
    tr.counter("temp_c", 85.0, cat="sim", sim_time_ns=5_000.0, clock="sim")
    return tr.records


class TestConversion:
    def test_wall_events_keep_real_pid(self):
        events = to_chrome_events(_sample_records())
        wall = [e for e in events if e.get("cat") == "engine"]
        assert wall and all(e["pid"] != SIM_PID for e in wall)

    def test_sim_clock_rows_rehomed_to_virtual_lane(self):
        events = to_chrome_events(_sample_records())
        sim = [e for e in events if e.get("cat") == "sim"]
        assert sim and all(
            e["pid"] == SIM_PID and e["tid"] == SIM_TID for e in sim
        )
        # sim timestamps are sim-µs
        assert sim[0]["ts"] == pytest.approx(5.0)

    def test_metadata_names_every_lane(self):
        events = to_chrome_events(_sample_records())
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["pid"] == SIM_PID for e in meta)
        assert any(e["pid"] != SIM_PID for e in meta)

    def test_no_sim_rows_no_sim_lane(self):
        tr = Tracer(enabled=True)
        tr.instant("x")
        events = to_chrome_events(tr.records)
        assert all(e["pid"] != SIM_PID for e in events)


class TestExport:
    def test_written_document_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = export_chrome_trace(_sample_records(), path, {"tool": "test"})
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert on_disk["displayTimeUnit"] == "ms"
        assert on_disk["otherData"] == {"tool": "test"}


class TestValidation:
    def test_valid_document_summarized(self):
        doc = export_chrome_trace(_sample_records())
        summary = validate_chrome_trace(doc)
        assert summary["events"] == len(doc["traceEvents"])
        assert summary["phases"]["X"] == 1
        assert summary["phases"]["C"] == 1
        assert "engine" in summary["categories"]
        assert "__metadata" not in summary["categories"]
        assert SIM_PID in summary["pids"]

    @pytest.mark.parametrize(
        "doc",
        [
            [],  # not an object
            {},  # missing traceEvents
            {"traceEvents": {}},  # not an array
            {"traceEvents": [], "displayTimeUnit": "s"},
            {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 1}]},
            {"traceEvents": [{"ph": "i", "pid": 1, "tid": 1}]},  # no name
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1}]},
            {
                "traceEvents": [
                    {"ph": "X", "name": "x", "pid": 1, "tid": 1,
                     "ts": 0, "dur": -1}
                ]
            },
            {"traceEvents": [{"ph": "i", "name": "x", "pid": "1", "tid": 1}]},
        ],
    )
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace(doc)
