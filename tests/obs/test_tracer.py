"""Span tracer: no-op fast path, record shapes, sinks, global install."""

import json
import threading

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    tracing,
)


class TestDisabledTracer:
    def test_span_returns_shared_null_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("x") is NULL_SPAN
        assert tr.span("y", cat="z", foo=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as s:
            s.set(anything=1)

    def test_emits_are_dropped(self):
        tr = Tracer(enabled=False)
        tr.instant("i")
        tr.counter("c", 1.0)
        tr.complete("x", 0.0, 1.0)
        assert len(tr) == 0

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False


class TestSpans:
    def test_span_records_complete_event(self):
        tr = Tracer(enabled=True)
        with tr.span("work", cat="test", k=1) as s:
            s.set(result=2)
        (rec,) = tr.records
        assert rec["ph"] == "X" and rec["name"] == "work"
        assert rec["cat"] == "test"
        assert rec["dur"] >= 0.0
        assert rec["args"] == {"k": 1, "result": 2}
        assert rec["pid"] > 0 and rec["tid"] == threading.get_ident()

    def test_span_attaches_error_on_exception(self):
        tr = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (rec,) = tr.records
        assert rec["args"]["error"] == "RuntimeError"

    def test_sim_time_rides_into_args(self):
        tr = Tracer(enabled=True)
        with tr.span("s", sim_time_ns=1500.0):
            pass
        (rec,) = tr.records
        assert rec["sim_ns"] == 1500.0


class TestInstantsAndCounters:
    def test_instant_wall_clock(self):
        tr = Tracer(enabled=True)
        tr.instant("warn", cat="core", level=3)
        (rec,) = tr.records
        assert rec["ph"] == "i" and rec["s"] == "t"
        assert rec["args"] == {"level": 3}
        assert "clock" not in rec

    def test_sim_clock_counter_uses_sim_microseconds(self):
        tr = Tracer(enabled=True)
        tr.counter("temp", 84.5, sim_time_ns=2_000.0, clock="sim")
        (rec,) = tr.records
        assert rec["clock"] == "sim"
        assert rec["ts"] == pytest.approx(2.0)  # 2000 ns = 2 µs
        assert rec["args"] == {"value": 84.5}

    def test_counter_value_coerced_to_float(self):
        tr = Tracer(enabled=True)
        tr.counter("n", 3)
        assert tr.records[0]["args"]["value"] == 3.0


class TestSinkAndLifecycle:
    def test_jsonl_sink_mirrors_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(enabled=True, sink=path) as tr:
            tr.instant("a")
            tr.counter("b", 1.0)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_clear_empties_buffer(self):
        tr = Tracer(enabled=True)
        tr.instant("x")
        tr.clear()
        assert len(tr) == 0


class TestGlobalInstall:
    def test_tracing_context_swaps_and_restores(self):
        before = get_tracer()
        with tracing() as tr:
            assert get_tracer() is tr
            assert tr.enabled
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        mine = Tracer(enabled=True)
        old = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            assert set_tracer(old) is mine

    def test_traced_decorator_resolves_at_call_time(self):
        @traced(cat="test")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3  # disabled: pure pass-through
        with tracing() as tr:
            assert add(3, 4) == 7
        names = [r["name"] for r in tr.records]
        assert any("add" in n for n in names)
