"""Timeline replay through the event engine with tracing."""

import pytest

from repro.obs.replay import replay_timeline
from repro.obs.tracer import Tracer

TIMELINE = [
    # (time_s, temp_c, pim_rate, pim_fraction)
    (0.0, 70.0, 0.1, 1.0),
    (0.001, 80.0, 0.2, 0.5),
    (0.002, 85.0, 0.05, 0.25),
]


class TestReplay:
    def test_processes_every_sample(self):
        summary = replay_timeline(TIMELINE, tracer=Tracer(enabled=True))
        assert summary["events"] == 3.0
        assert summary["sim_span_s"] == pytest.approx(0.002)

    def test_emits_engine_span_and_sim_tracks(self):
        tr = Tracer(enabled=True)
        replay_timeline(TIMELINE, tracer=tr)
        records = tr.records
        names = [r["name"] for r in records]
        assert "engine.run" in names
        for track in ("sim.temp_c", "sim.pim_rate_ops_ns", "sim.pim_fraction"):
            assert names.count(track) == len(TIMELINE)
        temps = [
            r for r in records
            if r["name"] == "sim.temp_c" and r.get("clock") == "sim"
        ]
        # sim-µs timestamps in timeline order
        assert [t["ts"] for t in temps] == pytest.approx([0.0, 1e3, 2e3])
        assert [t["args"]["value"] for t in temps] == [70.0, 80.0, 85.0]

    def test_empty_timeline(self):
        summary = replay_timeline([], tracer=Tracer(enabled=True))
        assert summary["events"] == 0.0
        assert summary["sim_span_s"] == 0.0
