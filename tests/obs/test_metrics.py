"""Metrics documents: export/load, report rendering, diffing."""

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_ID,
    diff_metrics,
    export_metrics,
    flatten_stats,
    load_metrics,
    render_report,
)
from repro.sim.stats import StatRegistry


def _registry():
    reg = StatRegistry()
    reg.counter("sim.epochs").add(4)
    h = reg.histogram("sim.dt_ns", 0.0, 100.0, 10)
    for x in (10.0, 20.0, 30.0):
        h.add(x)
    tw = reg.time_weighted("sim.frac", initial=0.0)
    tw.update(1.0, now=2.0)
    return reg


class TestExportLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        doc = export_metrics(
            _registry().snapshot(structured=True), path, meta={"seed": 3}
        )
        loaded = load_metrics(path)
        assert loaded == doc
        assert loaded["schema"] == METRICS_SCHEMA_ID
        assert loaded["meta"] == {"seed": 3}
        assert loaded["stats"]["sim.epochs"] == {"type": "counter", "value": 4.0}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="not a metrics document"):
            load_metrics(path)

    def test_stats_keys_sorted(self):
        doc = export_metrics({"b": {"type": "counter", "value": 1},
                              "a": {"type": "counter", "value": 2}})
        assert list(doc["stats"]) == ["a", "b"]


class TestReport:
    def test_flatten_drops_type_field(self):
        flat = flatten_stats({"x": {"type": "counter", "value": 2.0}})
        assert flat == {"x.value": 2.0}

    def test_render_is_deterministic_and_diffable(self):
        doc = export_metrics(_registry().snapshot(structured=True),
                             meta={"run": "a"})
        text = render_report(doc)
        assert text == render_report(doc)
        assert text.startswith(f"# metrics ({METRICS_SCHEMA_ID})")
        assert "# run: a" in text
        assert "sim.epochs.value" in text
        assert text.endswith("\n")

    def test_none_renders_as_dash(self):
        reg = StatRegistry()
        reg.histogram("empty", 0.0, 1.0, 2)
        text = render_report(export_metrics(reg.snapshot(structured=True)))
        assert "empty.p50" in text and "  -" in text


class TestDiff:
    def test_identical_docs_diff_empty(self):
        doc = export_metrics(_registry().snapshot(structured=True))
        assert diff_metrics(doc, doc) == ""

    def test_changed_added_removed(self):
        a = export_metrics({"x": {"type": "counter", "value": 1.0},
                            "gone": {"type": "counter", "value": 5.0}})
        b = export_metrics({"x": {"type": "counter", "value": 2.0},
                            "new": {"type": "counter", "value": 7.0}})
        diff = diff_metrics(a, b)
        assert "~ x.value  1 -> 2" in diff
        assert "- gone.value  5" in diff
        assert "+ new.value  7" in diff
