"""Cooling solutions: Table II values and the fan-curve model."""

import pytest

from repro.thermal.cooling import (
    COMMODITY_SERVER,
    COOLING_SOLUTIONS,
    HIGH_END_ACTIVE,
    LOW_END_ACTIVE,
    PASSIVE,
    CoolingSolution,
    fan_power_w,
    relative_fan_power,
)


class TestTableII:
    def test_resistances(self):
        assert PASSIVE.thermal_resistance_c_w == 4.0
        assert LOW_END_ACTIVE.thermal_resistance_c_w == 2.0
        assert COMMODITY_SERVER.thermal_resistance_c_w == 0.5
        assert HIGH_END_ACTIVE.thermal_resistance_c_w == 0.2

    def test_relative_powers(self):
        assert PASSIVE.fan_power_relative == 0.0
        assert LOW_END_ACTIVE.fan_power_relative == 1.0
        assert COMMODITY_SERVER.fan_power_relative == 104.0
        assert HIGH_END_ACTIVE.fan_power_relative == 380.0

    def test_high_end_wheel_diameter(self):
        assert HIGH_END_ACTIVE.wheel_diameter_relative == 2.0

    def test_registry_complete(self):
        assert set(COOLING_SOLUTIONS) == {"passive", "low-end", "commodity",
                                          "high-end"}

    def test_passive_flag(self):
        assert PASSIVE.is_passive
        assert not LOW_END_ACTIVE.is_passive


class TestFanCurve:
    def test_reproduces_low_end_point(self):
        assert relative_fan_power(2.0) == pytest.approx(1.0, rel=0.02)

    def test_reproduces_commodity_point(self):
        assert relative_fan_power(0.5) == pytest.approx(104.0, rel=0.05)

    def test_reproduces_high_end_point_with_big_wheel(self):
        assert relative_fan_power(0.2, wheel_diameter_relative=2.0) == pytest.approx(
            380.0, rel=0.05
        )

    def test_high_end_fan_is_about_13_watts(self):
        # Sec. III-B: "consumes around 13 Watt".
        assert 11.5 < fan_power_w(0.2, wheel_diameter_relative=2.0) < 14.0

    def test_passive_region_needs_no_fan(self):
        assert relative_fan_power(4.0) == 0.0
        assert relative_fan_power(5.0) == 0.0

    def test_power_monotone_in_resistance(self):
        rs = [3.0, 2.0, 1.0, 0.5, 0.3, 0.2]
        powers = [relative_fan_power(r) for r in rs]
        assert powers == sorted(powers)

    def test_floor_is_unreachable(self):
        assert relative_fan_power(0.05) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_fan_power(0.0)
        with pytest.raises(ValueError):
            relative_fan_power(1.0, wheel_diameter_relative=0.0)

    def test_solution_fan_power_anchor(self):
        assert HIGH_END_ACTIVE.fan_power_w() == pytest.approx(13.0)


class TestValidation:
    def test_resistance_positive(self):
        with pytest.raises(ValueError):
            CoolingSolution("bad", 0.0, 1.0)

    def test_fan_power_non_negative(self):
        with pytest.raises(ValueError):
            CoolingSolution("bad", 1.0, -1.0)
