"""Thermal sensor: sampling period, threshold, hysteresis."""

import pytest

from repro.thermal.sensor import ThermalSensor


class TestThresholds:
    def test_warns_at_threshold(self):
        s = ThermalSensor(warn_threshold_c=85.0, clear_threshold_c=83.0)
        assert not s.observe(84.9, 0.0)
        assert s.observe(85.0, 1.0)

    def test_hysteresis_holds_warning(self):
        s = ThermalSensor()
        s.observe(86.0, 0.0)
        assert s.observe(84.0, 1.0)       # between clear and warn: still on
        assert not s.observe(82.9, 2.0)   # below clear: off

    def test_no_rewarn_until_threshold(self):
        s = ThermalSensor()
        s.observe(86.0, 0.0)
        s.observe(82.0, 1.0)
        assert not s.observe(84.0, 2.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ThermalSensor(warn_threshold_c=85.0, clear_threshold_c=86.0)


class TestSampling:
    def test_readings_between_samples_ignored(self):
        s = ThermalSensor(sample_period_s=1.0)
        s.observe(50.0, 0.0)
        # within the same sample period: spike invisible
        assert not s.observe(99.0, 0.5)
        assert s.last_temp_c == 50.0
        # next period: seen
        assert s.observe(99.0, 1.0)

    def test_history_records_samples_only(self):
        s = ThermalSensor(sample_period_s=1.0)
        s.observe(50.0, 0.0)
        s.observe(60.0, 0.5)
        s.observe(70.0, 1.5)
        assert len(s.history) == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ThermalSensor(sample_period_s=0.0)


class TestReset:
    def test_reset_clears_everything(self):
        s = ThermalSensor()
        s.observe(99.0, 0.0)
        s.reset()
        assert not s.warning
        assert s.history == []
        assert s.observe(99.0, 0.0)  # can sample immediately again

    def test_last_temp_is_none_until_first_sample(self):
        # A fictitious 0 °C reading here would poison HW-DynT's
        # severity/settling logic after a mid-run sensor reset.
        s = ThermalSensor()
        assert s.last_temp_c is None
        s.observe(50.0, 0.0)
        assert s.last_temp_c == 50.0
        s.reset()
        assert s.last_temp_c is None


class TestPerturbation:
    """Scenario-injection hook: measurement noise and dropout."""

    def test_noise_shifts_the_reading(self):
        s = ThermalSensor()
        s.perturb = lambda temp_c, now_s: temp_c + 10.0
        assert s.observe(80.0, 0.0)  # 80 + 10 crosses the 85 threshold
        assert s.last_temp_c == 90.0
        assert s.history == [(0.0, 90.0, True)]

    def test_dropout_consumes_slot_and_freezes_state(self):
        s = ThermalSensor(sample_period_s=1.0)
        s.observe(90.0, 0.0)
        assert s.warning and s.last_temp_c == 90.0
        s.perturb = lambda temp_c, now_s: None
        assert s.observe(50.0, 1.0)   # reading lost: warning stays latched
        assert s.last_temp_c == 90.0  # frozen
        assert len(s.history) == 1    # lost samples are not recorded
        # The slot was consumed: a reading inside the same period is
        # still ignored.
        s.perturb = None
        assert s.observe(50.0, 1.5)
        assert s.last_temp_c == 90.0

    def test_perturb_survives_reset(self):
        # The fault lives in the measurement channel, not the run: a
        # thermal-shutdown recovery (sensor.reset()) must not heal it.
        s = ThermalSensor()
        s.perturb = lambda temp_c, now_s: None
        s.reset()
        assert s.perturb is not None
        assert not s.observe(99.0, 0.0)  # still dropped
