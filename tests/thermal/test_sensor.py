"""Thermal sensor: sampling period, threshold, hysteresis."""

import pytest

from repro.thermal.sensor import ThermalSensor


class TestThresholds:
    def test_warns_at_threshold(self):
        s = ThermalSensor(warn_threshold_c=85.0, clear_threshold_c=83.0)
        assert not s.observe(84.9, 0.0)
        assert s.observe(85.0, 1.0)

    def test_hysteresis_holds_warning(self):
        s = ThermalSensor()
        s.observe(86.0, 0.0)
        assert s.observe(84.0, 1.0)       # between clear and warn: still on
        assert not s.observe(82.9, 2.0)   # below clear: off

    def test_no_rewarn_until_threshold(self):
        s = ThermalSensor()
        s.observe(86.0, 0.0)
        s.observe(82.0, 1.0)
        assert not s.observe(84.0, 2.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ThermalSensor(warn_threshold_c=85.0, clear_threshold_c=86.0)


class TestSampling:
    def test_readings_between_samples_ignored(self):
        s = ThermalSensor(sample_period_s=1.0)
        s.observe(50.0, 0.0)
        # within the same sample period: spike invisible
        assert not s.observe(99.0, 0.5)
        assert s.last_temp_c == 50.0
        # next period: seen
        assert s.observe(99.0, 1.0)

    def test_history_records_samples_only(self):
        s = ThermalSensor(sample_period_s=1.0)
        s.observe(50.0, 0.0)
        s.observe(60.0, 0.5)
        s.observe(70.0, 1.5)
        assert len(s.history) == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ThermalSensor(sample_period_s=0.0)


class TestReset:
    def test_reset_clears_everything(self):
        s = ThermalSensor()
        s.observe(99.0, 0.0)
        s.reset()
        assert not s.warning
        assert s.history == []
        assert s.observe(99.0, 0.0)  # can sample immediately again
