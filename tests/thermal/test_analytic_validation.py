"""Analytic validation of the RC network against a hand-built 1-D ladder.

With a 1×1 floorplan grid there is no lateral conduction: the network is
exactly a series resistance ladder, so the steady solution can be computed
by hand (superposition over heat paths) and must match the sparse solver
to numerical precision. This pins the network assembly — interface
resistances, boundary terms, power injection — independently of any paper
calibration.
"""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import (
    BOARD_RESISTANCE_C_W,
    build_network,
)
from repro.thermal.solver import SteadySolver
from repro.thermal.stack import build_stack


@pytest.fixture(scope="module")
def ladder():
    stack = build_stack(HMC_2_0)
    fp = Floorplan(config=HMC_2_0, vault_cols=1, vault_rows=1, sub=1)
    scale = 1.0  # no calibration: pure physics check
    network = build_network(stack, fp, sink_resistance_c_w=0.5,
                            interface_scale=scale)
    return stack, network


def interface_resistances(stack, area, scale=1.0):
    """Per-interface series resistances, bottom to top, mirroring
    build_network's half-thickness rule."""
    rs = []
    layers = stack.layers
    for i in range(len(layers) - 1):
        a, b = layers[i], layers[i + 1]
        r = 0.5 * a.vertical_resistance_k_w(area) + \
            0.5 * b.vertical_resistance_k_w(area)
        if a.name.startswith(("bond", "tim")) or b.name.startswith(("bond", "tim")):
            r *= scale
        rs.append(r)
    return rs


class TestLadderAgainstHandComputation:
    def test_single_source_on_logic_die(self, ladder):
        """1 W injected at the bottom splits between the upward (stack +
        sink) and downward (board) paths; node temperatures follow the
        voltage divider exactly."""
        stack, network = ladder
        ambient = 25.0
        area = network.floorplan.cell_area_m2
        rs = interface_resistances(stack, area)

        # Path resistances seen from the logic node (node 0).
        r_up = sum(rs) + 0.5          # through the stack to the sink
        r_down = BOARD_RESISTANCE_C_W  # leak to the board
        p = 1.0
        # Current split: both paths end at ambient.
        q_up = p * r_down / (r_up + r_down)

        T = SteadySolver(network, ambient_c=ambient).solve(
            np.eye(network.num_nodes)[0] * p
        )
        # Logic-node temperature.
        expected_logic = ambient + p * (r_up * r_down) / (r_up + r_down)
        assert T[0] == pytest.approx(expected_logic, rel=1e-9)

        # Every node above: drop q_up x (resistance below it on the path).
        cum = 0.0
        for layer in range(1, stack.num_layers):
            cum += rs[layer - 1]
            expected = expected_logic - q_up * cum
            assert T[layer] == pytest.approx(expected, rel=1e-9), layer

    def test_power_at_top_bypasses_the_stack(self, ladder):
        """Heat injected in the spreader should barely warm the logic die
        (only via the shared sink drop + board divider)."""
        stack, network = ladder
        top = stack.num_layers - 1
        P = np.zeros(network.num_nodes)
        P[top] = 2.0
        T = SteadySolver(network, ambient_c=0.0).solve(P)
        # Spreader sits at ~= q_sink x 0.5 above ambient.
        assert T[top] == pytest.approx(2.0 * 0.5, rel=0.05)
        # The logic die floats close to the spreader temp (no flow through
        # the stack except the tiny board leak).
        assert T[0] < T[top] + 1e-9
        assert T[0] > T[top] * 0.8

    def test_superposition(self, ladder):
        """The network is linear: T(P1 + P2) − Tamb = ΔT(P1) + ΔT(P2)."""
        _stack, network = ladder
        solver = SteadySolver(network, ambient_c=25.0)
        rng = np.random.default_rng(1)
        P1 = rng.random(network.num_nodes)
        P2 = rng.random(network.num_nodes)
        T1 = solver.solve(P1) - 25.0
        T2 = solver.solve(P2) - 25.0
        T12 = solver.solve(P1 + P2) - 25.0
        assert np.allclose(T12, T1 + T2)

    def test_energy_conservation_at_boundaries(self, ladder):
        """All injected power leaves through sink + board at steady state."""
        _stack, network = ladder
        ambient = 25.0
        P = np.zeros(network.num_nodes)
        P[0] = 3.0
        T = SteadySolver(network, ambient_c=ambient).solve(P)
        boundary_flow = float(np.sum(network.B * (T - ambient)))
        assert boundary_flow == pytest.approx(3.0, rel=1e-9)
