"""Power model: energy constants, scalar powers, floorplan maps."""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.floorplan import Floorplan
from repro.thermal.power import (
    DRAM_ENERGY_PER_BIT,
    FU_WIDTH_BITS,
    LOGIC_ENERGY_PER_BIT,
    PowerModel,
    TrafficPoint,
)


@pytest.fixture
def pm():
    return PowerModel(HMC_2_0)


class TestConstants:
    def test_paper_energy_numbers(self):
        assert DRAM_ENERGY_PER_BIT == pytest.approx(3.7e-12)
        assert LOGIC_ENERGY_PER_BIT == pytest.approx(6.78e-12)
        assert FU_WIDTH_BITS == 128


class TestTrafficPoint:
    def test_streaming_equal_internal(self):
        t = TrafficPoint.streaming(100.0)
        assert t.internal_dram_gbs == 100.0 and t.pim_rate_ops_ns == 0.0

    def test_with_pim_adds_internal(self):
        t = TrafficPoint.with_pim(100.0, 2.0)
        assert t.internal_dram_gbs == pytest.approx(100.0 + 64.0)

    def test_pim_saturated_line(self):
        t0 = TrafficPoint.pim_saturated(0.0)
        assert t0.external_gbs == pytest.approx(320.0)
        t = TrafficPoint.pim_saturated(3.0)
        assert t.external_gbs == pytest.approx(320.0 - 32.0)  # 10.67*3
        assert t.internal_dram_gbs == pytest.approx(t.external_gbs)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficPoint(external_gbs=-1.0)
        with pytest.raises(ValueError):
            TrafficPoint.pim_saturated(-0.5)


class TestScalarPowers:
    def test_power_equals_energy_times_bandwidth(self, pm):
        # Sec. V-A: power = energy/bit x bandwidth.
        t = TrafficPoint.streaming(320.0)
        assert pm.dram_dynamic_w(t) == pytest.approx(
            3.7e-12 * 320e9 * 8
        )
        assert pm.logic_dynamic_w(t) == pytest.approx(6.78e-12 * 320e9 * 8)

    def test_fu_power_formula(self, pm):
        # Power(FU) = E x FUwidth x PIMrate (Sec. III-C).
        t = TrafficPoint(pim_rate_ops_ns=2.0)
        assert pm.fu_power_w(t) == pytest.approx(
            pm.fu_energy_per_bit * 128 * 2e9
        )

    def test_idle_power_is_static_only(self, pm):
        t = TrafficPoint.idle()
        assert pm.package_total_w(t) == pytest.approx(
            pm.static_logic_w + pm.static_dram_total_w
        )

    def test_full_bandwidth_package_power_plausible(self, pm):
        # Sec. III-B: the high-end fan's 13 W is "almost half" a fully
        # utilized cube -> package should be in the 25-32 W range.
        total = pm.package_total_w(TrafficPoint.streaming(320.0))
        assert 25.0 < total < 34.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(HMC_2_0, dram_energy_per_bit=-1.0)


class TestMaps:
    def test_maps_conserve_total_power(self, pm):
        fp = Floorplan.for_config(HMC_2_0)
        t = TrafficPoint.with_pim(200.0, 1.5)
        maps = pm.layer_power_maps(fp, t)
        total = sum(float(g.sum()) for g in maps.values())
        assert total == pytest.approx(pm.package_total_w(t))

    def test_one_map_per_powered_layer(self, pm):
        fp = Floorplan.for_config(HMC_2_0)
        maps = pm.layer_power_maps(fp, TrafficPoint.idle())
        assert set(maps) == {"logic"} | {f"dram{i}" for i in range(8)}

    def test_dram_power_split_evenly_across_dies(self, pm):
        fp = Floorplan.for_config(HMC_2_0)
        maps = pm.layer_power_maps(fp, TrafficPoint.streaming(100.0))
        die_sums = [maps[f"dram{i}"].sum() for i in range(8)]
        assert np.allclose(die_sums, die_sums[0])

    def test_vault_weights_skew_power(self, pm):
        fp = Floorplan.for_config(HMC_2_0)
        weights = np.zeros(32)
        weights[0] = 1.0
        maps = pm.layer_power_maps(fp, TrafficPoint.streaming(100.0), weights)
        dram0 = maps["dram0"]
        ix, iy = fp.vault_cells(0)[0]
        far_ix, far_iy = fp.vault_cells(31)[0]
        assert dram0[iy, ix] > dram0[far_iy, far_ix]

    def test_bad_weights_rejected(self, pm):
        fp = Floorplan.for_config(HMC_2_0)
        with pytest.raises(ValueError):
            pm.layer_power_maps(fp, TrafficPoint.idle(), np.ones(32))  # sums to 32
