"""Floorplan: vault grids, cell geometry, power-map construction."""

import numpy as np
import pytest

from repro.hmc.config import HMC_1_1, HMC_2_0
from repro.thermal.floorplan import Floorplan, _grid_shape


class TestGridShape:
    def test_32_vaults_is_8x4(self):
        assert _grid_shape(32) == (8, 4)

    def test_16_vaults_is_4x4(self):
        assert _grid_shape(16) == (4, 4)

    def test_prime_count_degenerates(self):
        assert _grid_shape(7) == (7, 1)


class TestGeometry:
    def test_cell_counts(self):
        fp = Floorplan.for_config(HMC_2_0, sub=2)
        assert fp.nx == 16 and fp.ny == 8
        assert fp.num_cells == 128

    def test_cell_area_sums_to_die(self):
        fp = Floorplan.for_config(HMC_2_0, sub=2)
        assert fp.cell_area_m2 * fp.num_cells == pytest.approx(68e-6)

    def test_die_dimensions_product(self):
        fp = Floorplan.for_config(HMC_2_0)
        assert fp.die_width_m * fp.die_height_m == pytest.approx(68e-6)
        assert fp.cell_dx_m * fp.nx == pytest.approx(fp.die_width_m)


class TestVaultCells:
    def test_every_cell_owned_by_one_vault(self):
        fp = Floorplan.for_config(HMC_2_0, sub=2)
        owned = [c for v in range(32) for c in fp.vault_cells(v)]
        assert len(owned) == fp.num_cells
        assert len(set(owned)) == fp.num_cells

    def test_center_cells_subset_of_vault(self):
        fp = Floorplan.for_config(HMC_2_0, sub=3)
        cells = set(fp.vault_cells(5))
        centers = fp.vault_center_cells(5)
        assert set(centers) <= cells
        assert len(centers) < len(cells)

    def test_vault_id_bounds(self):
        fp = Floorplan.for_config(HMC_1_1)
        with pytest.raises(ValueError):
            fp.vault_cells(16)


class TestPowerMaps:
    def test_uniform_map_conserves_power(self):
        fp = Floorplan.for_config(HMC_2_0)
        grid = fp.uniform_map(10.0)
        assert grid.sum() == pytest.approx(10.0)
        assert np.allclose(grid, grid.flat[0])

    def test_vault_map_conserves_power(self):
        fp = Floorplan.for_config(HMC_2_0)
        grid = fp.vault_map(0.5, center_fraction=0.8)
        assert grid.sum() == pytest.approx(0.5 * 32)

    def test_center_concentration(self):
        # sub=3 has a unique centre cell (sub=2 is fully centre-symmetric).
        fp = Floorplan.for_config(HMC_2_0, sub=3)
        grid = fp.vault_map(1.0, center_fraction=0.9)
        cells = fp.vault_cells(0)
        centers = set(fp.vault_center_cells(0))
        center_power = max(grid[iy, ix] for ix, iy in centers)
        edge_power = min(grid[iy, ix] for ix, iy in cells if (ix, iy) not in centers)
        assert center_power > edge_power

    def test_per_vault_vector(self):
        fp = Floorplan.for_config(HMC_2_0)
        powers = np.zeros(32)
        powers[3] = 2.0
        grid = fp.vault_map(powers)
        assert grid.sum() == pytest.approx(2.0)
        ix, iy = fp.vault_cells(3)[0]
        assert grid[iy, ix] > 0

    def test_validation(self):
        fp = Floorplan.for_config(HMC_2_0)
        with pytest.raises(ValueError):
            fp.vault_map(1.0, center_fraction=1.5)
        with pytest.raises(ValueError):
            fp.vault_map(np.ones(5))
        with pytest.raises(ValueError):
            fp.uniform_map(-1.0)
