"""Thermal solvers: steady-state physics, transient convergence."""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import build_network
from repro.thermal.solver import StepLuCache, SteadySolver, TransientSolver
from repro.thermal.stack import build_stack


@pytest.fixture(scope="module")
def network():
    return build_network(
        build_stack(HMC_2_0), Floorplan.for_config(HMC_2_0, sub=2),
        sink_resistance_c_w=0.5,
    )


class TestSteady:
    def test_zero_power_is_ambient(self, network):
        solver = SteadySolver(network, ambient_c=25.0)
        T = solver.solve(np.zeros(network.num_nodes))
        assert np.allclose(T, 25.0)

    def test_power_raises_temperature(self, network):
        solver = SteadySolver(network)
        P = np.zeros(network.num_nodes)
        P[network.node(0, 0, 0)] = 5.0
        T = solver.solve(P)
        assert T.min() > 25.0
        assert T[network.node(0, 0, 0)] == T.max()

    def test_linearity_in_power(self, network):
        solver = SteadySolver(network, ambient_c=0.0)
        P = np.random.default_rng(0).random(network.num_nodes)
        T1 = solver.solve(P)
        T2 = solver.solve(2 * P)
        assert np.allclose(T2, 2 * T1)

    def test_heat_flows_toward_sink(self, network):
        # Power at the bottom: temperature decreases monotonically upward.
        solver = SteadySolver(network)
        P = np.zeros(network.num_nodes)
        sl = network.layer_slice(0)
        P[sl] = 10.0 / network.cells_per_layer
        T = solver.solve(P)
        layer_means = [
            network.layer_temps(T, l).mean() for l in range(network.stack.num_layers)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(layer_means, layer_means[1:]))

    def test_shape_checked(self, network):
        solver = SteadySolver(network)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))


class TestTransient:
    def test_converges_to_steady_state(self, network):
        P = np.zeros(network.num_nodes)
        P[network.layer_slice(0)] = 20.0 / network.cells_per_layer
        steady = SteadySolver(network).solve(P)
        trans = TransientSolver(network)
        trans.run(P, duration_s=0.5, dt_s=1e-3)
        assert np.allclose(trans.T, steady, atol=0.5)

    def test_monotone_warmup(self, network):
        P = np.full(network.num_nodes, 0.01)
        trans = TransientSolver(network)
        peaks = []
        for _ in range(10):
            trans.step(P, 1e-3)
            peaks.append(trans.T.max())
        assert all(a <= b + 1e-9 for a, b in zip(peaks, peaks[1:]))

    def test_cooldown_returns_to_ambient(self, network):
        trans = TransientSolver(network, ambient_c=25.0, initial_c=90.0)
        trans.run(np.zeros(network.num_nodes), duration_s=1.0, dt_s=1e-3)
        assert np.allclose(trans.T, 25.0, atol=0.5)

    def test_stability_with_large_steps(self, network):
        # Implicit Euler must not blow up even with dt >> tau.
        P = np.full(network.num_nodes, 0.05)
        trans = TransientSolver(network)
        trans.run(P, duration_s=10.0, dt_s=1.0)
        assert np.isfinite(trans.T).all()
        assert trans.T.max() < 500.0

    def test_lu_cache_reused(self, network):
        trans = TransientSolver(network)
        P = np.zeros(network.num_nodes)
        trans.step(P, 1e-3)
        trans.step(P, 1e-3)
        trans.step(P, 2e-3)
        assert len(trans._lus) == 2

    def test_run_matches_stepping(self, network):
        P = np.zeros(network.num_nodes)
        P[network.layer_slice(0)] = 20.0 / network.cells_per_layer
        a = TransientSolver(network)
        b = TransientSolver(network)
        a.run(P, duration_s=0.02, dt_s=1e-3)
        for _ in range(20):
            b.step(P, 1e-3)
        assert np.allclose(a.T, b.T, rtol=0, atol=1e-9)

    def test_run_to_steady_converges_and_reports_steps(self, network):
        P = np.zeros(network.num_nodes)
        P[network.layer_slice(0)] = 20.0 / network.cells_per_layer
        steady = SteadySolver(network).solve(P)
        trans = TransientSolver(network)
        T, steps = trans.run_to_steady(P, dt_s=1e-3, tol_c=1e-6)
        assert 0 < steps < 100_000
        assert np.allclose(T, steady, atol=0.05)
        # Already settled: one confirming step suffices.
        _, steps2 = trans.run_to_steady(P, dt_s=1e-3, tol_c=1e-6)
        assert steps2 == 1

    def test_run_to_steady_validates_tol(self, network):
        trans = TransientSolver(network)
        with pytest.raises(ValueError):
            trans.run_to_steady(np.zeros(network.num_nodes), 1e-3, tol_c=0.0)

    def test_set_state_shape_checked(self, network):
        trans = TransientSolver(network)
        with pytest.raises(ValueError):
            trans.set_state(np.zeros(3))

    def test_dt_validation(self, network):
        trans = TransientSolver(network)
        with pytest.raises(ValueError):
            trans.step(np.zeros(network.num_nodes), 0.0)

    def test_dominant_time_constant_ms_scale(self, network):
        # Calibrated to the paper's millisecond feedback dynamics.
        tau = TransientSolver(network).dominant_time_constant_s()
        assert 1e-4 < tau < 0.2


class TestStepLuCache:
    def test_quantized_keys_collapse_float_noise(self, network):
        # Regression: adaptive stepping with dt values differing by float
        # noise used to leak one full LU factorization per distinct float.
        trans = TransientSolver(network)
        P = np.zeros(network.num_nodes)
        base = 1e-3
        for i in range(50):
            trans.step(P, base * (1.0 + i * 1e-13))
        assert len(trans._lus) == 1

    def test_cache_is_bounded(self, network):
        # Regression: the per-dt cache was unbounded.
        cache = StepLuCache(network, max_entries=4)
        trans = TransientSolver(network, lu_cache=cache)
        P = np.zeros(network.num_nodes)
        for i in range(1, 21):
            trans.step(P, i * 1e-3)
        assert len(cache) == 4
        assert cache.misses == 20

    def test_lru_eviction_keeps_recent(self, network):
        cache = StepLuCache(network, max_entries=2)
        cache.get(1e-3)
        cache.get(2e-3)
        cache.get(1e-3)      # refresh 1e-3
        cache.get(3e-3)      # evicts 2e-3
        hits_before = cache.hits
        cache.get(1e-3)
        assert cache.hits == hits_before + 1

    def test_shared_cache_requires_same_network(self, network):
        other = build_network(
            build_stack(HMC_2_0), Floorplan.for_config(HMC_2_0, sub=1),
            sink_resistance_c_w=0.5,
        )
        cache = StepLuCache(other)
        with pytest.raises(ValueError):
            TransientSolver(network, lu_cache=cache)

    def test_shared_cache_factorizes_once_across_solvers(self, network):
        cache = StepLuCache(network)
        a = TransientSolver(network, lu_cache=cache)
        b = TransientSolver(network, lu_cache=cache)
        P = np.zeros(network.num_nodes)
        a.step(P, 1e-3)
        b.step(P, 1e-3)
        assert cache.misses == 1 and cache.hits == 1

    def test_max_entries_validated(self, network):
        with pytest.raises(ValueError):
            StepLuCache(network, max_entries=0)
