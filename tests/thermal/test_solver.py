"""Thermal solvers: steady-state physics, transient convergence."""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import build_network
from repro.thermal.solver import SteadySolver, TransientSolver
from repro.thermal.stack import build_stack


@pytest.fixture(scope="module")
def network():
    return build_network(
        build_stack(HMC_2_0), Floorplan.for_config(HMC_2_0, sub=2),
        sink_resistance_c_w=0.5,
    )


class TestSteady:
    def test_zero_power_is_ambient(self, network):
        solver = SteadySolver(network, ambient_c=25.0)
        T = solver.solve(np.zeros(network.num_nodes))
        assert np.allclose(T, 25.0)

    def test_power_raises_temperature(self, network):
        solver = SteadySolver(network)
        P = np.zeros(network.num_nodes)
        P[network.node(0, 0, 0)] = 5.0
        T = solver.solve(P)
        assert T.min() > 25.0
        assert T[network.node(0, 0, 0)] == T.max()

    def test_linearity_in_power(self, network):
        solver = SteadySolver(network, ambient_c=0.0)
        P = np.random.default_rng(0).random(network.num_nodes)
        T1 = solver.solve(P)
        T2 = solver.solve(2 * P)
        assert np.allclose(T2, 2 * T1)

    def test_heat_flows_toward_sink(self, network):
        # Power at the bottom: temperature decreases monotonically upward.
        solver = SteadySolver(network)
        P = np.zeros(network.num_nodes)
        sl = network.layer_slice(0)
        P[sl] = 10.0 / network.cells_per_layer
        T = solver.solve(P)
        layer_means = [
            network.layer_temps(T, l).mean() for l in range(network.stack.num_layers)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(layer_means, layer_means[1:]))

    def test_shape_checked(self, network):
        solver = SteadySolver(network)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))


class TestTransient:
    def test_converges_to_steady_state(self, network):
        P = np.zeros(network.num_nodes)
        P[network.layer_slice(0)] = 20.0 / network.cells_per_layer
        steady = SteadySolver(network).solve(P)
        trans = TransientSolver(network)
        trans.run(P, duration_s=0.5, dt_s=1e-3)
        assert np.allclose(trans.T, steady, atol=0.5)

    def test_monotone_warmup(self, network):
        P = np.full(network.num_nodes, 0.01)
        trans = TransientSolver(network)
        peaks = []
        for _ in range(10):
            trans.step(P, 1e-3)
            peaks.append(trans.T.max())
        assert all(a <= b + 1e-9 for a, b in zip(peaks, peaks[1:]))

    def test_cooldown_returns_to_ambient(self, network):
        trans = TransientSolver(network, ambient_c=25.0, initial_c=90.0)
        trans.run(np.zeros(network.num_nodes), duration_s=1.0, dt_s=1e-3)
        assert np.allclose(trans.T, 25.0, atol=0.5)

    def test_stability_with_large_steps(self, network):
        # Implicit Euler must not blow up even with dt >> tau.
        P = np.full(network.num_nodes, 0.05)
        trans = TransientSolver(network)
        trans.run(P, duration_s=10.0, dt_s=1.0)
        assert np.isfinite(trans.T).all()
        assert trans.T.max() < 500.0

    def test_lu_cache_reused(self, network):
        trans = TransientSolver(network)
        P = np.zeros(network.num_nodes)
        trans.step(P, 1e-3)
        trans.step(P, 1e-3)
        trans.step(P, 2e-3)
        assert len(trans._lus) == 2

    def test_set_state_shape_checked(self, network):
        trans = TransientSolver(network)
        with pytest.raises(ValueError):
            trans.set_state(np.zeros(3))

    def test_dt_validation(self, network):
        trans = TransientSolver(network)
        with pytest.raises(ValueError):
            trans.step(np.zeros(network.num_nodes), 0.0)

    def test_dominant_time_constant_ms_scale(self, network):
        # Calibrated to the paper's millisecond feedback dynamics.
        tau = TransientSolver(network).dominant_time_constant_s()
        assert 1e-4 < tau < 0.2
