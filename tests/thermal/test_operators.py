"""Process-level shared thermal operators: reuse, isolation, keying."""

import numpy as np
import pytest

from repro.hmc.config import HMC_1_1, HMC_2_0
from repro.thermal import operators
from repro.thermal.cooling import COMMODITY_SERVER, PASSIVE
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint


@pytest.fixture(autouse=True)
def fresh_cache():
    operators.clear_cache()
    yield
    operators.clear_cache()


class TestOperatorCache:
    def test_same_key_returns_same_bundle(self):
        a = operators.get_operators(HMC_2_0, COMMODITY_SERVER)
        b = operators.get_operators(HMC_2_0, COMMODITY_SERVER)
        assert a is b
        stats = operators.cache_stats()
        assert stats == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "step_lu_entries": 0,
            "step_lu_hits": 0,
            "step_lu_misses": 0,
            "propagators": 0,
            "propagator_extensions": 0,
        }

    def test_distinct_keys_get_distinct_bundles(self):
        a = operators.get_operators(HMC_2_0, COMMODITY_SERVER)
        assert operators.get_operators(HMC_2_0, PASSIVE) is not a
        assert operators.get_operators(HMC_1_1, COMMODITY_SERVER) is not a
        assert operators.get_operators(HMC_2_0, COMMODITY_SERVER, sub=3) is not a
        assert (
            operators.get_operators(HMC_2_0, COMMODITY_SERVER, interface_scale=1.0)
            is not a
        )
        assert (
            operators.get_operators(HMC_2_0, COMMODITY_SERVER, ambient_c=30.0)
            is not a
        )
        assert operators.cache_stats()["entries"] == 6

    def test_prewarm_populates_step_lu(self):
        ops = operators.prewarm(HMC_2_0, COMMODITY_SERVER, control_dt_s=25e-6)
        assert len(ops.step_lus) == 1
        # A model over the same package hits the warmed factorization.
        model = HmcThermalModel()
        model.step(TrafficPoint.streaming(100.0), 25e-6)
        assert ops.step_lus.misses == 1
        assert ops.step_lus.hits >= 1


class TestModelSharing:
    def test_models_share_network_and_solvers(self):
        a = HmcThermalModel()
        b = HmcThermalModel()
        assert a.network is b.network
        assert a._steady is b._steady
        assert a._transient is not b._transient
        assert a._transient._lus is b._transient._lus

    def test_transient_state_is_isolated(self):
        a = HmcThermalModel()
        b = HmcThermalModel()
        a.step(TrafficPoint.streaming(320.0), 25e-6)
        assert np.allclose(b.state, b.ambient_c)
        assert a.state.max() > b.state.max()

    def test_share_operators_false_builds_private_copies(self):
        shared = HmcThermalModel()
        private = HmcThermalModel(share_operators=False)
        assert private.network is not shared.network
        assert operators.cache_stats()["entries"] == 1

    def test_shared_and_private_agree(self):
        t = TrafficPoint.streaming(320.0)
        shared = HmcThermalModel().steady_peak_dram_c(t)
        private = HmcThermalModel(share_operators=False).steady_peak_dram_c(t)
        assert shared == pytest.approx(private, abs=1e-9)

    def test_settle_matches_steady_state(self):
        model = HmcThermalModel()
        t = TrafficPoint.streaming(240.0)
        settled = model.settle(t, dt_s=1e-3, tol_c=1e-6)
        assert settled == pytest.approx(model.steady_peak_dram_c(t), abs=0.1)
