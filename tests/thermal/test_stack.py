"""Layer stacks and materials."""

import pytest

from repro.hmc.config import HMC_1_1, HMC_2_0
from repro.thermal.materials import BOND, SILICON, LayerSpec, Material
from repro.thermal.stack import STACK_HMC_1_1, STACK_HMC_2_0, build_stack


class TestMaterials:
    def test_silicon_props(self):
        assert 100 < SILICON.conductivity_w_mk < 160
        assert SILICON.volumetric_heat_j_m3k > 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity_w_mk=0.0, volumetric_heat_j_m3k=1.0)

    def test_layer_resistance_formula(self):
        layer = LayerSpec("x", SILICON, thickness_m=100e-6)
        r = layer.vertical_resistance_k_w(area_m2=1e-4)
        assert r == pytest.approx(100e-6 / (SILICON.conductivity_w_mk * 1e-4))

    def test_layer_capacity_formula(self):
        layer = LayerSpec("x", BOND, thickness_m=20e-6)
        c = layer.heat_capacity_j_k(area_m2=1e-4)
        assert c == pytest.approx(BOND.volumetric_heat_j_m3k * 1e-4 * 20e-6)

    def test_layer_thickness_positive(self):
        with pytest.raises(ValueError):
            LayerSpec("x", SILICON, thickness_m=0.0)


class TestStack:
    def test_hmc20_layer_order(self):
        names = [l.name for l in STACK_HMC_2_0.layers]
        assert names[0] == "logic"
        assert names[-2:] == ["tim", "spreader"]
        assert names.count("dram0") == 1
        # logic + 8x(bond+dram) + tim + spreader
        assert len(names) == 1 + 16 + 2

    def test_hmc11_has_four_dram_dies(self):
        assert len(STACK_HMC_1_1.dram_layer_indices()) == 4

    def test_powered_layers(self):
        powered = STACK_HMC_2_0.powered_layer_indices()
        assert STACK_HMC_2_0.logic_layer_index in powered
        assert len(powered) == 9  # logic + 8 DRAM

    def test_dram_above_logic(self):
        s = build_stack(HMC_2_0)
        logic = s.logic_layer_index
        assert all(i > logic for i in s.dram_layer_indices())

    def test_die_area(self):
        assert STACK_HMC_2_0.die_area_m2 == pytest.approx(68e-6)

    def test_missing_logic_raises(self):
        from repro.thermal.stack import StackSpec

        with pytest.raises(ValueError):
            StackSpec(name="empty", layers=[]).logic_layer_index
