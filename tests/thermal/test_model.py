"""Thermal model facade: paper calibration points and transient behaviour."""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.cooling import COOLING_SOLUTIONS, HIGH_END_ACTIVE, PASSIVE
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint


@pytest.fixture(scope="module")
def model():
    return HmcThermalModel()


class TestCalibrationPoints:
    """The Sec. III-B operating points the model is calibrated to."""

    def test_idle_is_33c(self, model):
        assert model.steady_peak_dram_c(TrafficPoint.idle()) == pytest.approx(
            33.0, abs=0.5
        )

    def test_full_bandwidth_is_81c(self, model):
        t = model.steady_peak_dram_c(TrafficPoint.streaming(320.0))
        assert t == pytest.approx(81.0, abs=0.5)

    def test_max_pim_rate_is_105c(self, model):
        t = model.steady_peak_dram_c(TrafficPoint.pim_saturated(6.5))
        assert t == pytest.approx(105.0, abs=1.0)

    def test_pim_threshold_rate_near_85c(self, model):
        t = model.steady_peak_dram_c(TrafficPoint.pim_saturated(1.3))
        assert 84.0 < t < 87.0

    def test_temperature_monotone_in_bandwidth(self, model):
        temps = [
            model.steady_peak_dram_c(TrafficPoint.streaming(bw))
            for bw in (0, 80, 160, 240, 320)
        ]
        assert temps == sorted(temps)

    def test_passive_sink_overheats_at_full_bandwidth(self):
        m = HmcThermalModel(cooling=PASSIVE)
        assert m.steady_peak_dram_c(TrafficPoint.streaming(320.0)) > 105.0

    def test_stronger_cooling_is_cooler(self):
        temps = []
        for name in ("passive", "low-end", "commodity", "high-end"):
            m = HmcThermalModel(cooling=COOLING_SOLUTIONS[name])
            temps.append(m.steady_peak_dram_c(TrafficPoint.streaming(200.0)))
        assert temps == sorted(temps, reverse=True)


class TestSpatialStructure:
    def test_bottom_dram_die_hottest(self, model):
        model.steady_state(TrafficPoint.streaming(320.0))
        d0 = model.heatmap("dram0").max()
        d7 = model.heatmap("dram7").max()
        assert d0 > d7

    def test_logic_hotter_than_dram(self, model):
        t_logic = model.steady_peak_logic_c(TrafficPoint.streaming(320.0))
        t_dram = model.steady_peak_dram_c(TrafficPoint.streaming(320.0))
        assert t_logic > t_dram

    def test_surface_cooler_than_die(self, model):
        traffic = TrafficPoint.streaming(320.0)
        assert model.steady_surface_c(traffic) < model.steady_peak_dram_c(traffic)

    def test_heatmap_requires_solve(self):
        m = HmcThermalModel()
        with pytest.raises(RuntimeError):
            m.heatmap("logic")

    def test_unknown_layer(self, model):
        model.steady_state(TrafficPoint.idle())
        with pytest.raises(KeyError):
            model.heatmap("nope")


class TestTransient:
    def test_warm_start_matches_steady(self):
        m = HmcThermalModel()
        t = TrafficPoint.streaming(240.0)
        m.warm_start(t)
        assert m.peak_dram_c() == pytest.approx(m.steady_peak_dram_c(t), abs=0.1)

    def test_step_approaches_steady(self):
        m = HmcThermalModel()
        m.warm_start(TrafficPoint.idle())
        target = m.steady_peak_dram_c(TrafficPoint.streaming(320.0))
        start = m.peak_dram_c()
        for _ in range(400):
            cur = m.step(TrafficPoint.streaming(320.0), 100e-6)
        assert cur > start + 0.9 * (target - start)

    def test_millisecond_scale_response(self):
        # Fig. 8 / Fig. 14 dynamics: visible movement within ~1 ms.
        m = HmcThermalModel()
        m.warm_start(TrafficPoint.streaming(240.0))
        t0 = m.peak_dram_c()
        for _ in range(10):
            cur = m.step(TrafficPoint.pim_saturated(4.0), 100e-6)
        assert cur - t0 > 1.0

    def test_energy_scale_raises_temperature(self):
        m = HmcThermalModel()
        m.warm_start(TrafficPoint.streaming(240.0))
        base = m.step(TrafficPoint.streaming(240.0), 1e-3)
        m.warm_start(TrafficPoint.streaming(240.0))
        hot = m.step(TrafficPoint.streaming(240.0), 1e-3, dram_energy_scale=2.0)
        assert hot > base

    def test_negative_energy_scale_rejected(self):
        m = HmcThermalModel()
        with pytest.raises(ValueError):
            m.step(TrafficPoint.idle(), 1e-3, dram_energy_scale=-1.0)

    def test_reset_transient(self):
        m = HmcThermalModel()
        m.warm_start(TrafficPoint.streaming(320.0))
        m.reset_transient()
        assert m.peak_dram_c() == pytest.approx(m.ambient_c)


class TestBasisConsistency:
    def test_basis_matches_direct_map_assembly(self):
        # The cached linear basis must reproduce the direct computation.
        m = HmcThermalModel()
        t = TrafficPoint(external_gbs=123.0, internal_dram_gbs=200.0,
                         pim_rate_ops_ns=2.5)
        fast = m._power_vector(t)
        maps = m.power.layer_power_maps(m.floorplan, t)
        direct = m.network.power_vector(maps)
        assert np.allclose(fast, direct)

    def test_junction_estimate(self):
        m = HmcThermalModel()
        assert m.junction_from_surface_c(50.0, 20.0) == pytest.approx(57.0)
