"""RC network construction: structure, conservation, boundary terms."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hmc.config import HMC_1_1, HMC_2_0
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import build_network, build_network_reference
from repro.thermal.stack import build_stack


@pytest.fixture(scope="module")
def network():
    stack = build_stack(HMC_2_0)
    fp = Floorplan.for_config(HMC_2_0, sub=2)
    return build_network(stack, fp, sink_resistance_c_w=0.5)


class TestStructure:
    def test_node_count(self, network):
        layers = network.stack.num_layers
        assert network.num_nodes == layers * network.cells_per_layer

    def test_node_indexing(self, network):
        fp = network.floorplan
        assert network.node(0, 0, 0) == 0
        assert network.node(1, 0, 0) == fp.num_cells
        assert network.node(0, 1, 0) == 1
        assert network.node(0, 0, 1) == fp.nx

    def test_node_bounds(self, network):
        with pytest.raises(ValueError):
            network.node(0, 99, 0)
        with pytest.raises(ValueError):
            network.node(99, 0, 0)

    def test_layer_index_covers_stack(self, network):
        assert "logic" in network.layer_index
        assert "dram0" in network.layer_index
        assert "spreader" in network.layer_index


class TestMatrixProperties:
    def test_G_is_symmetric(self, network):
        diff = network.G - network.G.T
        assert abs(diff).max() < 1e-12

    def test_row_sums_equal_boundary(self, network):
        # Laplacian + diag(B): row sums must equal B exactly.
        row_sums = np.asarray(network.G.sum(axis=1)).ravel()
        assert np.allclose(row_sums, network.B)

    def test_G_positive_definite(self, network):
        # Grounded Laplacian with boundary conductance: SPD.
        from scipy.sparse.linalg import eigsh

        lam = eigsh(sp.csc_matrix(network.G), k=1, which="SA",
                    return_eigenvectors=False)
        assert lam[0] > 0

    def test_capacitances_positive(self, network):
        assert np.all(network.C > 0)

    def test_boundary_on_top_and_bottom_only(self, network):
        n_cells = network.cells_per_layer
        top = network.stack.num_layers - 1
        interior = network.B[n_cells : top * n_cells]
        assert np.all(interior == 0)
        assert np.all(network.B[:n_cells] > 0)           # board leak
        assert np.all(network.B[top * n_cells :] > 0)    # sink

    def test_sink_conductance_total(self, network):
        top = network.stack.num_layers - 1
        g_sink = network.B[top * network.cells_per_layer :].sum()
        assert g_sink == pytest.approx(1.0 / 0.5)


class TestPowerVector:
    def test_assembles_named_layers(self, network):
        fp = network.floorplan
        maps = {"logic": np.full((fp.ny, fp.nx), 0.1)}
        P = network.power_vector(maps)
        assert P.sum() == pytest.approx(0.1 * fp.num_cells)
        sl = network.layer_slice(network.layer_index["logic"])
        assert np.all(P[sl] == 0.1)

    def test_unknown_layer_rejected(self, network):
        with pytest.raises(KeyError):
            network.power_vector({"nope": np.zeros((8, 16))})

    def test_shape_checked(self, network):
        with pytest.raises(ValueError):
            network.power_vector({"logic": np.zeros((3, 3))})


class TestValidation:
    def test_sink_resistance_positive(self):
        stack = build_stack(HMC_2_0)
        fp = Floorplan.for_config(HMC_2_0)
        with pytest.raises(ValueError):
            build_network(stack, fp, sink_resistance_c_w=0.0)

    def test_interface_scale_positive(self):
        stack = build_stack(HMC_2_0)
        fp = Floorplan.for_config(HMC_2_0)
        with pytest.raises(ValueError):
            build_network(stack, fp, 0.5, interface_scale=0.0)

    def test_reference_validates_too(self):
        stack = build_stack(HMC_2_0)
        fp = Floorplan.for_config(HMC_2_0)
        with pytest.raises(ValueError):
            build_network_reference(stack, fp, sink_resistance_c_w=-1.0)


class TestVectorizedEquivalence:
    """The vectorized assembly must reproduce the loop specification."""

    @pytest.mark.parametrize(
        "config,sub", [(HMC_2_0, 1), (HMC_2_0, 2), (HMC_2_0, 4), (HMC_1_1, 3)]
    )
    def test_matches_reference(self, config, sub):
        stack = build_stack(config)
        fp = Floorplan.for_config(config, sub=sub)
        vec = build_network(stack, fp, sink_resistance_c_w=0.5)
        ref = build_network_reference(stack, fp, sink_resistance_c_w=0.5)

        assert np.array_equal(vec.C, ref.C)
        assert np.array_equal(vec.B, ref.B)
        assert vec.layer_index == ref.layer_index
        # Same sparsity pattern, entries equal to within summation-order
        # rounding (the diagonal sums up to 6 conductances per node).
        assert vec.G.nnz == ref.G.nnz
        diff = abs(vec.G - ref.G).max()
        assert diff <= 1e-12 * abs(ref.G).max()

    def test_matches_reference_nondefault_boundaries(self):
        stack = build_stack(HMC_2_0)
        fp = Floorplan.for_config(HMC_2_0, sub=2)
        kwargs = dict(
            sink_resistance_c_w=2.0,
            interface_scale=1.3,
            board_resistance_c_w=40.0,
        )
        vec = build_network(stack, fp, **kwargs)
        ref = build_network_reference(stack, fp, **kwargs)
        assert np.array_equal(vec.B, ref.B)
        assert abs(vec.G - ref.G).max() <= 1e-12 * abs(ref.G).max()
