"""Reduced-order propagator vs the exact LU stepper.

The macro engine trusts :class:`ReducedPropagator` to reproduce the exact
per-quantum peak-DRAM trajectory to well under the 1e-6 °C decision
margin; these tests pin that contract directly against
``HmcThermalModel.step``.
"""

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint
from repro.thermal.propagator import first_crossing

DT_S = 25e-6


def coeff_columns(tp: TrafficPoint, ambient_c: float, k: int,
                  scale: float = 1.0) -> np.ndarray:
    """Power-basis weights for ``k`` quanta of constant traffic.

    Matches the engine's convention for the propagator input basis
    ``(p0_logic, p0_dram, v_ext, v_int, v_pim, ambient)``.
    """
    col = np.array([
        1.0,
        scale,
        tp.external_gbs,
        scale * tp.internal_dram_gbs,
        scale * tp.pim_rate_ops_ns,
        ambient_c,
    ])
    return np.tile(col[:, None], (1, k))


class TestAgainstExactStepper:
    def test_constant_traffic_trajectory(self):
        model = HmcThermalModel(HMC_2_0)
        tp = TrafficPoint(
            external_gbs=80.0, internal_dram_gbs=120.0, pim_rate_ops_ns=0.4
        )
        model.warm_start(TrafficPoint.idle())
        prop = model.propagator(DT_S)
        assert prop.healthy
        T0 = model.state.copy()

        K = 48
        exact = np.array([model.step(tp, DT_S) for _ in range(K)])
        T_end, peaks = prop.multi_step(
            T0, coeff_columns(tp, model.ambient_c, K)
        )
        assert peaks is not None
        np.testing.assert_allclose(peaks, exact, atol=1e-6)
        # The reconstructed end state matches the exact node state too.
        assert float(np.abs(T_end - model.state).max()) < 1e-6

    def test_derated_energy_scale(self):
        """The EXTENDED/CRITICAL refresh derating enters as a scale on
        the DRAM power-basis columns; the march must track it."""
        model = HmcThermalModel(HMC_2_0)
        tp = TrafficPoint(
            external_gbs=60.0, internal_dram_gbs=90.0, pim_rate_ops_ns=0.2
        )
        model.warm_start(tp)
        prop = model.propagator(DT_S)
        T0 = model.state.copy()

        K = 24
        scale = 1.6
        exact = np.array([
            model.step(tp, DT_S, dram_energy_scale=scale) for _ in range(K)
        ])
        _, peaks = prop.multi_step(
            T0, coeff_columns(tp, model.ambient_c, K, scale=scale)
        )
        np.testing.assert_allclose(peaks, exact, atol=1e-6)

    def test_project_round_trip(self):
        model = HmcThermalModel(HMC_2_0)
        model.warm_start(TrafficPoint.streaming(100.0))
        prop = model.propagator(DT_S)
        z, resid = prop.project(model.state)
        assert z is not None
        assert resid < 1e-6
        back = prop.reconstruct(z)
        assert float(np.abs(back - model.state).max()) < 1e-6
        assert prop.dram_peak_of(z) == pytest.approx(
            model.peak_dram_c(), abs=1e-6
        )


class TestFirstCrossing:
    def test_finds_first_index(self):
        series = np.array([80.0, 82.0, 84.9, 85.0, 90.0, 84.0])
        assert first_crossing(series, 85.0) == 3

    def test_none_when_below(self):
        assert first_crossing(np.array([80.0, 81.0]), 85.0) is None

    def test_empty_series(self):
        assert first_crossing(np.empty(0), 85.0) is None
