"""Example scripts: compile everything, execute the cheap ones."""

import pathlib
import py_compile
import runpy
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


class TestCompile:
    @pytest.mark.parametrize(
        "name",
        sorted(p.name for p in EXAMPLES.glob("*.py")),
    )
    def test_example_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "graph_analytics_offloading.py",
            "cooling_design_study.py",
            "custom_throttling_policy.py",
            "pim_isa_playground.py",
        } <= names


class TestExecution:
    def _run(self, name, *args):
        return subprocess.run(
            [sys.executable, str(EXAMPLES / name), *args],
            capture_output=True, text=True, timeout=300,
        )

    def test_pim_isa_playground(self):
        proc = self._run("pim_isa_playground.py")
        assert proc.returncode == 0, proc.stderr
        assert "memory now holds 42" in proc.stdout
        assert "4x more" in proc.stdout

    def test_cooling_design_study(self):
        proc = self._run("cooling_design_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "no heat sink suffices" in proc.stdout

    def test_graph_analytics_quick(self):
        proc = self._run("graph_analytics_offloading.py", "--quick", "kcore")
        assert proc.returncode == 0, proc.stderr
        assert "kcore" in proc.stdout
