"""FairQueue: stride weights, aging, quotas, drain — frozen clock."""

import pytest

from repro.api.fairness import FairQueue, QuotaExceeded, TenantPolicy


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_queue(aging_rate=0.0, **policies):
    clock = FakeClock()
    queue = FairQueue(
        policies={k: v for k, v in policies.items()},
        aging_rate=aging_rate,
        clock=clock,
    )
    return queue, clock


class TestBasics:
    def test_fifo_within_one_tenant(self):
        queue, _ = make_queue()
        for i in range(3):
            queue.submit("a", i)
        assert [queue.pop()[1] for _ in range(3)] == [0, 1, 2]
        assert queue.pop() is None

    def test_len_counts_all_tenants(self):
        queue, _ = make_queue()
        queue.submit("a", 1)
        queue.submit("b", 2)
        assert len(queue) == 2

    def test_deterministic_tie_break_on_name(self):
        queue, _ = make_queue()
        queue.submit("zed", "z")
        queue.submit("abe", "a")
        # Equal vtime (both fresh) → lexicographically first tenant wins.
        assert queue.pop()[0] == "abe"


class TestWeights:
    def test_weighted_share_is_proportional(self):
        queue, _ = make_queue(
            heavy=TenantPolicy(weight=2.0, max_queued=100),
            light=TenantPolicy(weight=1.0, max_queued=100),
        )
        for i in range(30):
            queue.submit("heavy", i)
            queue.submit("light", i)
        first_12 = [queue.pop()[0] for _ in range(12)]
        # Stride scheduling: over any window the 2:1 weights yield a 2:1
        # service ratio (8 heavy, 4 light in 12 dispatches).
        assert first_12.count("heavy") == 8
        assert first_12.count("light") == 4

    def test_reactivating_tenant_joins_at_service_front(self):
        queue, _ = make_queue()
        for i in range(10):
            queue.submit("busy", i)
        for _ in range(10):
            queue.pop()
        # "idle" never queued while busy accumulated vtime; when it joins
        # it must not get a 10-dispatch catch-up burst — it starts at the
        # current front and alternates fairly.
        for i in range(4):
            queue.submit("busy", f"b{i}")
            queue.submit("idle", f"i{i}")
        first_4 = [queue.pop()[0] for _ in range(4)]
        assert first_4.count("idle") == 2
        assert first_4.count("busy") == 2


class TestAging:
    def test_waiting_head_gains_priority(self):
        queue, clock = make_queue(
            aging_rate=0.5,
            flood=TenantPolicy(weight=10.0, max_queued=1000),
            meek=TenantPolicy(weight=0.1, max_queued=10),
        )
        queue.submit("meek", "m")
        for i in range(50):
            queue.submit("flood", i)
        # Without aging the weight-0.1 tenant would wait ~100 dispatches;
        # after 30 wall-seconds its head has 15 vtime of credit and wins.
        assert queue.pop()[0] in ("flood", "meek")
        clock.now += 30.0
        winners = [queue.pop()[0] for _ in range(3)]
        assert "meek" in winners

    def test_no_aging_with_zero_rate(self):
        queue, clock = make_queue(
            aging_rate=0.0,
            flood=TenantPolicy(weight=10.0, max_queued=1000),
            meek=TenantPolicy(weight=0.1, max_queued=10),
        )
        queue.submit("meek", "m1")
        queue.submit("meek", "m2")
        for i in range(20):
            queue.submit("flood", i)
        clock.now += 1000.0  # wall time alone earns no credit
        winners = [queue.pop()[0] for _ in range(21)]
        # One meek dispatch costs 10 vtime (weight 0.1); with zero aging
        # its second item waits out the entire flood backlog.
        assert winners.count("meek") == 1


class TestQuotas:
    def test_max_queued_raises_and_drops_item(self):
        queue, _ = make_queue(a=TenantPolicy(max_queued=2))
        queue.submit("a", 1)
        queue.submit("a", 2)
        with pytest.raises(QuotaExceeded) as exc:
            queue.submit("a", 3)
        assert exc.value.tenant == "a" and exc.value.limit == 2
        assert len(queue) == 2  # the rejected item was not queued
        assert queue.stats()["a"]["rejected"] == 1

    def test_capacity_for_tracks_backlog(self):
        queue, _ = make_queue(a=TenantPolicy(max_queued=3))
        assert queue.capacity_for("a") == 3
        queue.submit("a", 1)
        assert queue.capacity_for("a") == 2

    def test_max_running_cap_skips_tenant(self):
        queue, _ = make_queue(
            capped=TenantPolicy(max_running=1),
            free=TenantPolicy(),
        )
        queue.submit("capped", "c")
        queue.submit("free", "f")
        tenant, item = queue.pop({"capped": 1})
        assert tenant == "free"
        # Once the cap frees up, the capped tenant is runnable again.
        tenant, item = queue.pop({"capped": 0})
        assert tenant == "capped"

    def test_all_capped_pops_none(self):
        queue, _ = make_queue(capped=TenantPolicy(max_running=1))
        queue.submit("capped", "c")
        assert queue.pop({"capped": 1}) is None


class TestPolicyValidation:
    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            TenantPolicy(weight=0.0)

    def test_bad_quota_rejected(self):
        with pytest.raises(ValueError):
            TenantPolicy(max_queued=0)


class TestDrainAndStats:
    def test_drain_empties_everything(self):
        queue, _ = make_queue()
        queue.submit("b", 1)
        queue.submit("a", 2)
        queue.submit("a", 3)
        drained = queue.drain()
        assert drained == [("a", 2), ("a", 3), ("b", 1)]
        assert len(queue) == 0

    def test_stats_shape(self):
        queue, _ = make_queue(a=TenantPolicy(weight=2.0))
        queue.submit("a", 1)
        queue.pop()
        stats = queue.stats()
        assert stats["a"]["weight"] == 2.0
        assert stats["a"]["submitted"] == 1
        assert stats["a"]["dispatched"] == 1
        assert stats["a"]["queued"] == 0
