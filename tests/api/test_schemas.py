"""Request validation: acceptance, rejection, and CLI key parity."""

import pytest

from repro.api.schemas import (
    ValidationError,
    validate_run_request,
    validate_sweep_request,
    validate_tenant,
)
from repro.service.handlers import simulation_spec


class TestRunRequest:
    def test_minimal_body_applies_defaults(self):
        spec = validate_run_request({"workload": "pagerank"})
        assert spec.kind == "simulation"
        assert spec.params["dataset"] == "ldbc"
        assert spec.params["policy"] == "coolpim-hw"
        assert spec.params["cooling"] == "commodity"
        assert spec.seed == 0

    def test_key_matches_cli_spec(self):
        # HTTP submissions must land on the same content key the CLI
        # produces — that equality is the whole dedupe story.
        body = {
            "workload": "kcore", "dataset": "ldbc-tiny",
            "policy": "coolpim-sw", "cooling": "high-end",
            "seed": 7, "workload_scale": 0.25,
        }
        spec = validate_run_request(body)
        cli = simulation_spec(
            workload="kcore", dataset="ldbc-tiny", policy="coolpim-sw",
            cooling="high-end", seed=7, workload_scale=0.25,
        )
        assert spec.key == cli.key

    def test_default_scale_engine_trace_leave_key_unchanged(self):
        plain = validate_run_request({"workload": "pagerank"})
        spelled = validate_run_request({
            "workload": "pagerank", "workload_scale": 1.0,
            "engine": "macro", "trace": False,
        })
        assert plain.key == spelled.key

    def test_workload_is_required(self):
        with pytest.raises(ValidationError) as exc:
            validate_run_request({})
        assert exc.value.field == "workload"

    def test_unknown_field_rejected(self):
        # A typo must not silently run a default simulation.
        with pytest.raises(ValidationError) as exc:
            validate_run_request({"workload": "pagerank", "polcy": "naive"})
        assert exc.value.field == "polcy"

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError):
            validate_run_request([1, 2])
        with pytest.raises(ValidationError):
            validate_run_request("pagerank")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("workload", "nope"),
            ("dataset", "nope"),
            ("policy", "nope"),
            ("cooling", "nope"),
            ("engine", "nope"),
            ("seed", -1),
            ("seed", 2**31),
            ("seed", True),
            ("workload_scale", 0.0),
            ("workload_scale", 1.5),
            ("trace", "yes"),
            ("timeout_s", 0),
            ("timeout_s", -5),
        ],
    )
    def test_bad_field_values_rejected(self, field, value):
        body = {"workload": "pagerank", field: value}
        with pytest.raises(ValidationError) as exc:
            validate_run_request(body)
        assert exc.value.field == field

    def test_custom_kind_needs_allowlist(self):
        body = {"kind": "toy", "params": {"n": 1}}
        with pytest.raises(ValidationError) as exc:
            validate_run_request(body)
        assert exc.value.field == "kind"
        spec = validate_run_request(body, allow_kinds=frozenset({"toy"}))
        assert spec.kind == "toy" and spec.params == {"n": 1}
        assert "api" in spec.tags

    def test_non_string_kind_rejected(self):
        with pytest.raises(ValidationError):
            validate_run_request({"kind": 3, "workload": "pagerank"})

    def test_static_policy_family_accepted(self):
        spec = validate_run_request(
            {"workload": "pagerank", "policy": "static-0.25"}
        )
        assert spec.params["policy"] == "static-0.25"
        with pytest.raises(ValidationError) as exc:
            validate_run_request(
                {"workload": "pagerank", "policy": "static-1.5"}
            )
        assert exc.value.field == "policy"
        assert "static-<fraction>" in exc.value.message

    def test_scenario_fields_enter_spec_and_key(self):
        clean = validate_run_request({"workload": "pagerank"})
        injected = validate_run_request({
            "workload": "pagerank",
            "scenario": "degraded-cooling",
            "scenario_seed": 3,
        })
        assert injected.params["scenario"] == "degraded-cooling"
        assert injected.params["scenario_seed"] == 3
        assert injected.key != clean.key
        # No scenario → no scenario params → existing keys unchanged.
        assert "scenario" not in clean.params

    def test_scenario_rejections(self):
        with pytest.raises(ValidationError) as exc:
            validate_run_request(
                {"workload": "pagerank", "scenario": "nope"}
            )
        assert exc.value.field == "scenario"
        with pytest.raises(ValidationError) as exc:
            validate_run_request(
                {"workload": "pagerank", "scenario_seed": 1}
            )
        assert exc.value.field == "scenario_seed"
        with pytest.raises(ValidationError) as exc:
            validate_run_request({
                "workload": "pagerank",
                "scenario": "heatwave",
                "scenario_seed": -1,
            })
        assert exc.value.field == "scenario_seed"


class TestSweepRequest:
    def test_cross_product_expansion(self):
        specs = validate_sweep_request({
            "workloads": ["pagerank", "kcore"],
            "datasets": ["ldbc-tiny"],
            "policies": ["non-offloading", "coolpim-hw"],
        })
        assert len(specs) == 4
        assert len({s.key for s in specs}) == 4  # all distinct

    def test_policies_default_to_all(self):
        from repro.core.policies import POLICY_NAMES

        specs = validate_sweep_request({"workloads": ["pagerank"]})
        assert len(specs) == len(POLICY_NAMES)

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError) as exc:
            validate_sweep_request({"workloads": ["pagerank", "pagerank"]})
        assert exc.value.field == "workloads"

    def test_job_limit_enforced(self):
        with pytest.raises(ValidationError):
            validate_sweep_request(
                {"workloads": ["pagerank", "kcore"]}, max_jobs=3
            )

    def test_sweep_accepts_static_and_scenario(self):
        specs = validate_sweep_request({
            "workloads": ["pagerank"],
            "policies": ["non-offloading", "static-0.5"],
            "scenario": "heatwave",
            "scenario_seed": 2,
        })
        assert len(specs) == 2
        for spec in specs:
            assert spec.params["scenario"] == "heatwave"
            assert spec.params["scenario_seed"] == 2
        assert specs[1].params["policy"] == "static-0.5"

    def test_gang_engine_groups_per_workload_dataset(self):
        specs = validate_sweep_request({
            "workloads": ["pagerank", "kcore"],
            "datasets": ["ldbc-tiny"],
            "policies": ["non-offloading", "coolpim-hw", "static-0.5"],
            "engine": "gang",
        })
        assert len(specs) == 2  # one gang per (workload, dataset) cell
        for spec in specs:
            assert spec.kind == "gang_sweep"
            assert spec.params["policies"] == [
                "non-offloading", "coolpim-hw", "static-0.5"
            ]

    def test_gang_engine_falls_back_per_run(self):
        # A scenario (per-run fault injection) and a single-policy sweep
        # are not gang-eligible: both degrade to per-run simulation
        # specs, cache-key identical to a macro submission.
        with_scenario = validate_sweep_request({
            "workloads": ["pagerank"],
            "policies": ["non-offloading", "coolpim-hw"],
            "engine": "gang",
            "scenario": "heatwave",
        })
        assert [s.kind for s in with_scenario] == ["simulation"] * 2
        single = validate_sweep_request({
            "workloads": ["pagerank"],
            "policies": ["coolpim-hw"],
            "engine": "gang",
        })
        assert single[0].kind == "simulation"
        macro = validate_sweep_request({
            "workloads": ["pagerank"],
            "policies": ["coolpim-hw"],
        })
        assert single[0].key == macro[0].key

    def test_sweep_rejects_bad_policy_entry(self):
        with pytest.raises(ValidationError) as exc:
            validate_sweep_request({
                "workloads": ["pagerank"],
                "policies": ["static-7"],
            })
        assert exc.value.field == "policy"

    def test_custom_items(self):
        specs = validate_sweep_request(
            {"kind": "toy", "items": [{"params": {"n": 1}},
                                      {"params": {"n": 2}}]},
            allow_kinds=frozenset({"toy"}),
        )
        assert [s.params["n"] for s in specs] == [1, 2]
        with pytest.raises(ValidationError):
            validate_sweep_request(
                {"kind": "toy", "items": [42]},
                allow_kinds=frozenset({"toy"}),
            )


class TestTenant:
    def test_defaults_to_public(self):
        assert validate_tenant(None) == "public"
        assert validate_tenant("") == "public"

    def test_accepts_tokens(self):
        assert validate_tenant("team-a.prod_1") == "team-a.prod_1"

    @pytest.mark.parametrize("bad", ["-leading", "has space", "a" * 65, 42])
    def test_rejects_bad_identifiers(self, bad):
        with pytest.raises(ValidationError):
            validate_tenant(bad)
