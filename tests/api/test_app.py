"""HTTP layer end to end: submission, dedupe, streams, quotas, admin.

Uses a toy job kind (``apitest``) allow-listed on the test server so
requests execute in milliseconds; the real simulation path is covered by
``tests/api/test_e2e.py``.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import ApiClient, ApiClientError, ApiService, start_server_thread
from repro.api.fairness import FairQueue, TenantPolicy
from repro.service.journal import JobJournal
from repro.service.jobs import register_handler
from repro.service.store import ResultStore

_CALLS = []
_GATE = threading.Event()


def _apitest_handler(spec):
    _CALLS.append(spec.key)
    if spec.params.get("gate"):
        assert _GATE.wait(10.0)
    if spec.params.get("fail"):
        raise RuntimeError("handler exploded")
    time.sleep(float(spec.params.get("sleep_s", 0.0)))
    return {"result": {"value": spec.params.get("value", 0)}}


register_handler("apitest", _apitest_handler)


@pytest.fixture
def server(tmp_path):
    _CALLS.clear()
    _GATE.clear()
    store = ResultStore(tmp_path / "cache")
    journal = JobJournal(tmp_path / "journal.jsonl")
    service = ApiService(
        store=store,
        journal=journal,
        queue=FairQueue(default_policy=TenantPolicy(max_queued=2)),
        workers=1,
        allow_kinds=("apitest",),
    )
    handle = start_server_thread(service)
    try:
        yield handle
    finally:
        _GATE.set()
        handle.stop()
        journal.close()


@pytest.fixture
def client(server):
    return ApiClient(server.host, server.port)


def submit_and_wait(client, **body):
    doc = client.submit_run(**body)
    return client.wait_for_run(doc["run_id"], timeout_s=15.0)


def wait_until_running(client, run_id, timeout_s=10.0):
    """Poll until a run leaves the queue (occupies a worker slot)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        doc = client.get_run(run_id)
        if doc["status"] != "queued":
            return doc
        time.sleep(0.01)
    raise TimeoutError(f"run {run_id} never started")


class TestLifecycle:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["workers"] == 1

    def test_live_run_completes(self, client):
        doc = client.submit_run(kind="apitest", params={"value": 7})
        assert doc["status"] == "queued" and not doc["cached"]
        done = client.wait_for_run(doc["run_id"], timeout_s=15.0)
        assert done["status"] == "completed"
        assert done["result"]["result"]["value"] == 7
        assert len(_CALLS) == 1

    def test_resubmission_is_cache_hit(self, client):
        submit_and_wait(client, kind="apitest", params={"value": 1})
        status, doc = client.request(
            "POST", "/runs", {"kind": "apitest", "params": {"value": 1}}
        )
        assert status == 200  # immediate — not 202 Accepted
        assert doc["cached"] is True and doc["status"] == "completed"
        assert len(_CALLS) == 1  # nothing re-executed

    def test_failed_run_reports_error(self, client):
        done = submit_and_wait(client, kind="apitest", params={"fail": True})
        assert done["status"] == "failed"
        assert "handler exploded" in done["error"]


class TestCoalescing:
    def test_concurrent_identical_submissions_coalesce(self, client):
        first = client.submit_run(kind="apitest", params={"gate": True})
        second = client.submit_run(kind="apitest", params={"gate": True})
        assert second["coalesced_into"] == first["run_id"]
        _GATE.set()
        d1 = client.wait_for_run(first["run_id"], timeout_s=15.0)
        d2 = client.wait_for_run(second["run_id"], timeout_s=15.0)
        assert d1["status"] == d2["status"] == "completed"
        assert d1["result"] == d2["result"]
        assert len(_CALLS) == 1


class TestEventStream:
    def test_jsonl_events_ordered(self, client):
        doc = client.submit_run(kind="apitest", params={"value": 3})
        events = list(client.stream_events(doc["run_id"]))
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert [e["event"] for e in events] == [
            "queued", "started", "completed"
        ]
        assert events[-1]["result"]["value"] == 3

    def test_late_subscriber_replays_full_log(self, client):
        done = submit_and_wait(client, kind="apitest", params={"value": 4})
        events = list(client.stream_events(done["run_id"]))
        assert [e["event"] for e in events] == [
            "queued", "started", "completed"
        ]

    def test_sse_framing(self, server, client):
        done = submit_and_wait(client, kind="apitest", params={"value": 5})
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", f"/runs/{done['run_id']}/events")
            response = conn.getresponse()
            assert response.getheader("Content-Type").startswith(
                "text/event-stream"
            )
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        frames = [f for f in body.split("\n\n") if f.strip()]
        assert frames[-1].startswith("event: end")
        assert frames[0].splitlines()[0] == "id: 0"
        assert "event: completed" in frames[-2]

    def test_events_for_unknown_run_404(self, client):
        with pytest.raises(ApiClientError) as exc:
            list(client.stream_events("nope"))
        assert exc.value.status == 404


class TestValidationOverHttp:
    def test_bad_body_is_400_with_field(self, client):
        status, doc = client.request("POST", "/runs", {"workload": "nope"})
        assert status == 400
        assert doc["field"] == "workload"

    def test_disallowed_kind_is_400(self, client):
        status, doc = client.request(
            "POST", "/runs", {"kind": "experiment", "params": {}}
        )
        assert status == 400 and doc["field"] == "kind"

    def test_unparseable_json_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "POST", "/runs", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_route_404_and_bad_method_405(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("DELETE", "/runs/abc")[0] == 405

    def test_bad_tenant_header_is_400(self, server):
        bad = ApiClient(server.host, server.port, tenant="bad tenant!")
        status, doc = bad.request(
            "POST", "/runs", {"kind": "apitest", "params": {}}
        )
        assert status == 400 and doc["field"] == "tenant"


class TestQuota:
    def test_quota_enforced_under_concurrent_load(self, server):
        # workers=1 and the gate hold the only worker busy; the tenant's
        # max_queued=2 admits two more distinct jobs, everything past
        # that must 429 no matter how the submissions interleave.
        client = ApiClient(server.host, server.port, tenant="flood")
        gate = client.submit_run(kind="apitest", params={"gate": True})
        wait_until_running(client, gate["run_id"])
        results = []
        lock = threading.Lock()

        def submit(n):
            status, doc = client.request(
                "POST", "/runs", {"kind": "apitest", "params": {"value": n}}
            )
            with lock:
                results.append(status)

        threads = [
            threading.Thread(target=submit, args=(n,)) for n in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert sorted(results) == [202, 202, 429, 429, 429, 429]
        _GATE.set()

    def test_other_tenant_unaffected(self, server):
        flood = ApiClient(server.host, server.port, tenant="flood")
        calm = ApiClient(server.host, server.port, tenant="calm")
        gate = flood.submit_run(kind="apitest", params={"gate": True})
        wait_until_running(flood, gate["run_id"])
        flood.submit_run(kind="apitest", params={"value": 1})
        flood.submit_run(kind="apitest", params={"value": 2})
        with pytest.raises(ApiClientError) as exc:
            flood.submit_run(kind="apitest", params={"value": 3})
        assert exc.value.status == 429
        doc = calm.submit_run(kind="apitest", params={"value": 3})
        assert doc["status"] == "queued"
        _GATE.set()
        calm.wait_for_run(doc["run_id"], timeout_s=15.0)

    def test_oversized_sweep_rejected_whole(self, server):
        client = ApiClient(server.host, server.port, tenant="sweepy")
        with pytest.raises(ApiClientError) as exc:
            client.submit_sweep(
                kind="apitest",
                items=[{"params": {"value": n}} for n in range(3)],
            )
        assert exc.value.status == 429
        # All-or-nothing: nothing from the rejected sweep was queued.
        assert client.healthz()["tenants"].get("sweepy", {}).get(
            "queued", 0
        ) == 0


class TestSweeps:
    def test_sweep_tracks_runs(self, client):
        doc = client.submit_sweep(
            kind="apitest",
            items=[{"params": {"value": 1}}, {"params": {"value": 2}}],
        )
        assert doc["jobs"] == 2
        for run in doc["runs"]:
            client.wait_for_run(run["run_id"], timeout_s=15.0)
        sweep = client.get_sweep(doc["sweep_id"])
        assert sweep["status"] == "completed"
        assert sweep["counts"] == {"completed": 2}


class TestAdmin:
    def test_cache_stats_reflect_completions(self, client):
        submit_and_wait(client, kind="apitest", params={"value": 9})
        doc = client.admin_cache()
        assert doc["entries"] == 1
        assert doc["journal"]["events"]["api_completed"] == 1

    def test_tenant_stats_exposed(self, server):
        client = ApiClient(server.host, server.port, tenant="teamx")
        submit_and_wait(client, kind="apitest", params={"value": 10})
        status, doc = client.request("GET", "/admin/tenants")
        assert status == 200
        assert doc["teamx"]["dispatched"] == 1

    def test_artifacts_conflict_before_completion(self, client):
        run = client.submit_run(kind="apitest", params={"gate": True})
        status, doc = client.request(
            "GET", f"/runs/{run['run_id']}/artifacts/metrics"
        )
        assert status == 409
        _GATE.set()


class TestShutdownDrain:
    def test_queued_runs_drain_to_journal(self, tmp_path):
        _CALLS.clear()
        _GATE.clear()
        journal_path = tmp_path / "drain.jsonl"
        journal = JobJournal(journal_path)
        service = ApiService(
            store=ResultStore(tmp_path / "cache"),
            journal=journal,
            workers=1,
            allow_kinds=("apitest",),
        )
        handle = start_server_thread(service)
        client = ApiClient(handle.host, handle.port)
        running = client.submit_run(kind="apitest", params={"gate": True})
        wait_until_running(client, running["run_id"])
        # With the only worker gated, this one is stuck in the queue and
        # must be drained back to the journal by the shutdown.
        queued = client.submit_run(kind="apitest", params={"value": 99})
        threading.Timer(0.3, _GATE.set).start()  # release mid-drain
        handle.stop()
        journal.close()
        events = JobJournal.read(journal_path)
        assert "api_stop" in {e["event"] for e in events}
        drained = [e for e in events if e["event"] == "api_drained"]
        assert [e["run_id"] for e in drained] == [queued["run_id"]]
        # The full spec rides along so an operator can resubmit it.
        assert drained[0]["spec"]["params"]["value"] == 99
