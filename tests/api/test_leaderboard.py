"""Leaderboard: speedup vs baseline, determinism, staleness, filters."""

import json
import math

from repro.api.leaderboard import BASELINE_POLICY, build_leaderboard
from repro.service.handlers import simulation_spec
from repro.service.store import ResultStore


def _result(runtime_s, energy_j=100.0, peak_c=80.0, warnings=0):
    return {
        "runtime_s": runtime_s,
        "total_energy_j": energy_j,
        "peak_dram_temp_c": peak_c,
        "avg_pim_rate_ops_ns": 0.5,
        "thermal_warnings": warnings,
        "shutdowns": 0,
    }


def _put(store, policy, runtime_s, workload="pagerank", dataset="ldbc-tiny",
         cooling="commodity", seed=0, **kw):
    spec = simulation_spec(
        workload=workload, dataset=dataset, policy=policy, cooling=cooling,
        seed=seed,
    )
    store.put(spec, {"result": _result(runtime_s, **kw)}, elapsed_s=1.0)


class TestRanking:
    def test_speedup_vs_baseline_and_ranks(self, tmp_path):
        store = ResultStore(tmp_path)
        _put(store, BASELINE_POLICY, 10.0)
        _put(store, "coolpim-hw", 5.0)       # 2.0x
        _put(store, "naive-offloading", 8.0)  # 1.25x
        board = build_leaderboard(store)
        by_policy = {e["policy"]: e for e in board["policies"]}
        assert by_policy["coolpim-hw"]["rank"] == 1
        assert by_policy["coolpim-hw"]["geomean_speedup"] == 2.0
        assert by_policy["naive-offloading"]["geomean_speedup"] == 1.25
        assert by_policy[BASELINE_POLICY]["geomean_speedup"] == 1.0
        assert board["scenarios"] == 1

    def test_geomean_across_scenarios(self, tmp_path):
        store = ResultStore(tmp_path)
        for workload, base, fast in [("pagerank", 10.0, 5.0),
                                     ("kcore", 8.0, 1.0)]:
            _put(store, BASELINE_POLICY, base, workload=workload)
            _put(store, "coolpim-hw", fast, workload=workload)
        board = build_leaderboard(store)
        row = next(
            e for e in board["policies"] if e["policy"] == "coolpim-hw"
        )
        assert row["compared_scenarios"] == 2
        assert math.isclose(row["geomean_speedup"], math.sqrt(2.0 * 8.0))

    def test_policy_without_baseline_ranks_last(self, tmp_path):
        store = ResultStore(tmp_path)
        _put(store, BASELINE_POLICY, 10.0, workload="pagerank")
        _put(store, "coolpim-hw", 5.0, workload="pagerank")
        # kcore has no baseline run: coolpim-sw can't be compared.
        _put(store, "coolpim-sw", 1.0, workload="kcore")
        board = build_leaderboard(store)
        ranked = [e["policy"] for e in board["policies"]]
        assert ranked[-1] == "coolpim-sw"
        row = board["policies"][-1]
        assert row["geomean_speedup"] is None
        assert row["scenarios"] == 1  # still counted/aggregated

    def test_thermal_and_energy_aggregates(self, tmp_path):
        store = ResultStore(tmp_path)
        _put(store, BASELINE_POLICY, 10.0, energy_j=200.0)
        _put(store, "coolpim-hw", 5.0, energy_j=100.0, peak_c=84.5,
             warnings=3)
        board = build_leaderboard(store)
        row = next(
            e for e in board["policies"] if e["policy"] == "coolpim-hw"
        )
        assert row["mean_energy_ratio"] == 0.5
        assert row["max_peak_temp_c"] == 84.5
        assert row["thermal_warnings"] == 3


class TestDeterminism:
    def test_identical_json_across_builds(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in (0, 1, 2):
            _put(store, BASELINE_POLICY, 10.0, seed=seed)
            _put(store, "coolpim-hw", 6.0, seed=seed)
            _put(store, "coolpim-sw", 7.0, seed=seed)
        a = json.dumps(build_leaderboard(store), sort_keys=True)
        b = json.dumps(
            build_leaderboard(ResultStore(tmp_path)), sort_keys=True
        )
        assert a == b

    def test_distinct_seeds_are_distinct_scenarios(self, tmp_path):
        store = ResultStore(tmp_path)
        _put(store, BASELINE_POLICY, 10.0, seed=0)
        _put(store, BASELINE_POLICY, 10.0, seed=1)
        assert build_leaderboard(store)["scenarios"] == 2


class TestSelection:
    def test_stale_records_excluded_by_default(self, tmp_path):
        old = ResultStore(tmp_path, fingerprint="old-code")
        _put(old, BASELINE_POLICY, 10.0)
        _put(old, "coolpim-hw", 5.0)
        current = ResultStore(tmp_path)
        assert build_leaderboard(current)["policies"] == []
        stale_board = build_leaderboard(current, include_stale=True)
        assert len(stale_board["policies"]) == 2

    def test_filters_restrict_suite(self, tmp_path):
        store = ResultStore(tmp_path)
        _put(store, BASELINE_POLICY, 10.0, workload="pagerank")
        _put(store, "coolpim-hw", 5.0, workload="pagerank")
        _put(store, BASELINE_POLICY, 4.0, workload="kcore")
        _put(store, "coolpim-hw", 1.0, workload="kcore")
        board = build_leaderboard(store, workload="kcore")
        assert board["scenarios"] == 1
        row = next(
            e for e in board["policies"] if e["policy"] == "coolpim-hw"
        )
        assert row["geomean_speedup"] == 4.0
        assert board["filters"]["workload"] == "kcore"

    def test_non_simulation_records_ignored(self, tmp_path):
        from repro.service.jobs import JobSpec

        store = ResultStore(tmp_path)
        store.put(
            JobSpec(kind="experiment", name="fig5", params={}),
            {"text": "..."},
        )
        board = build_leaderboard(store)
        assert board["scenarios"] == 0 and board["policies"] == []
