"""Telemetry plane over HTTP: /metrics, /readyz, /telemetry, live events.

Uses a toy job kind whose handler emits through the thread-local run
sink (exactly what the simulation engines do), so live-telemetry
plumbing is exercised without a real simulation. Registry isolation:
each test swaps in a fresh default TelemetryRegistry.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import ApiClient, ApiService, start_server_thread
from repro.service.journal import JobJournal
from repro.service.jobs import register_handler
from repro.service.store import ResultStore
from repro.telemetry import parse_exposition
from repro.telemetry.registry import TelemetryRegistry, set_registry

_GATE = threading.Event()


def _teletest_handler(spec):
    from repro.telemetry.live import get_run_sink

    sink = get_run_sink()
    n = int(spec.params.get("samples", 3))
    for i in range(n):
        if sink is not None:
            sink.emit_sample({
                "t_s": i * 1e-3,
                "progress": (i + 1) / n,
                "dram_c": 70.0 + i,
                "pim_fraction": 1.0,
                "engine": "teletest",
            })
    if spec.params.get("gate"):
        assert _GATE.wait(10.0)
    time.sleep(float(spec.params.get("sleep_s", 0.0)))
    return {"result": {"value": spec.params.get("value", 0)}}


register_handler("teletest", _teletest_handler)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(TelemetryRegistry())
    try:
        yield
    finally:
        set_registry(previous)


@pytest.fixture
def service(tmp_path):
    _GATE.clear()
    journal = JobJournal(tmp_path / "journal.jsonl")
    svc = ApiService(
        store=ResultStore(tmp_path / "cache"),
        journal=journal,
        workers=2,
        allow_kinds=("teletest",),
        ready_backlog=4,
    )
    yield svc
    journal.close()


@pytest.fixture
def server(service):
    handle = start_server_thread(service)
    try:
        yield handle
    finally:
        _GATE.set()
        handle.stop()


@pytest.fixture
def client(server):
    return ApiClient(server.host, server.port)


class TestReadyz:
    def test_ready_when_idle(self, client):
        ok, body = client.readyz()
        assert ok and body["ready"] and body["reason"] == "ok"

    def test_saturated_queue_reports_503(self, server, client):
        # Fill both workers plus the ready_backlog=4 queue slots.
        for i in range(6):
            client.submit_run(
                kind="teletest", params={"gate": True, "value": i}
            )
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            ok, body = client.readyz()
            if not ok:
                break
            time.sleep(0.02)
        assert not ok and "saturated" in body["reason"]
        _GATE.set()

    def test_draining_reports_503(self, service):
        service._closing = True
        ok, reason = service.ready()
        assert not ok and reason == "draining"


class TestLiveTelemetryEvents:
    def test_telemetry_events_arrive_before_terminal(self, client):
        doc = client.submit_run(kind="teletest", params={"samples": 3})
        events = list(client.stream_events(doc["run_id"]))
        names = [e["event"] for e in events]
        assert names[-1] == "completed"
        telemetry = [e for e in events if e["event"] == "telemetry"]
        assert telemetry, f"no telemetry in {names}"
        assert names.index("telemetry") < names.index("completed")
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert telemetry[0]["dram_c"] == 70.0
        assert telemetry[0]["engine"] == "teletest"

    def test_budget_caps_event_count(self, service, server):
        service.telemetry_max_samples = 2
        client = ApiClient(server.host, server.port)
        doc = client.submit_run(kind="teletest", params={"samples": 50})
        events = list(client.stream_events(doc["run_id"]))
        telemetry = [e for e in events if e["event"] == "telemetry"]
        # budget + the close() flush of the freshest pending sample
        assert 1 <= len(telemetry) <= 3
        assert telemetry[-1]["progress"] == 1.0  # last value won

    def test_telemetry_series_endpoint(self, client):
        doc = client.submit_run(kind="teletest", params={"samples": 2})
        client.wait_for_run(doc["run_id"], timeout_s=15.0)
        series = client.run_telemetry(doc["run_id"])
        assert series["run_id"] == doc["run_id"]
        assert series["status"] == "completed"
        assert series["count"] == len(series["samples"]) == 2
        assert series["samples"][0]["dram_c"] == 70.0

    def test_telemetry_unknown_run_404(self, client):
        status, _ = client.request("GET", "/telemetry/runs/nope")
        assert status == 404


class TestEventResume:
    def test_since_resumes_without_duplicates(self, client):
        doc = client.submit_run(kind="teletest", params={"samples": 3})
        first = list(client.stream_events(doc["run_id"]))
        # Disconnect after the second event; resume must deliver exactly
        # the remainder, in order, no duplicates.
        cut = first[1]["seq"]
        resumed = list(client.stream_events(doc["run_id"], since=cut))
        assert [e["seq"] for e in resumed] == [
            e["seq"] for e in first[2:]
        ]
        assert resumed[-1]["event"] == "completed"
        telemetry = [e for e in resumed if e["event"] == "telemetry"]
        assert [e["seq"] for e in telemetry] == sorted(
            e["seq"] for e in telemetry
        )

    def test_last_event_id_header_resumes(self, server, client):
        doc = client.submit_run(kind="teletest", params={"samples": 1})
        client.wait_for_run(doc["run_id"], timeout_s=15.0)
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "GET",
                f"/runs/{doc['run_id']}/events?format=jsonl",
                headers={"Last-Event-ID": "0",
                         "Accept": "application/x-ndjson"},
            )
            resp = conn.getresponse()
            assert resp.status == 200
            events = [json.loads(l) for l in resp if l.strip()]
        finally:
            conn.close()
        assert events and events[0]["seq"] == 1  # seq 0 not repeated

    def test_bad_since_is_400(self, server, client):
        doc = client.submit_run(kind="teletest", params={})
        status, body = client.request(
            "GET", f"/runs/{doc['run_id']}/events?since=banana"
        )
        assert status == 400

    def test_slow_follower_does_not_block_producer(self, server, client):
        """Backpressure: a follower that never reads past its first
        bytes must not stall run execution or other followers."""
        slow = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        doc = client.submit_run(
            kind="teletest", params={"samples": 4, "value": 99}
        )
        try:
            slow.request(
                "GET",
                f"/runs/{doc['run_id']}/events",
                headers={"Accept": "text/event-stream"},
            )
            # Deliberately do NOT read the response body: the socket
            # buffer holds whatever the server pushed; the service must
            # keep executing regardless.
            done = client.wait_for_run(doc["run_id"], timeout_s=15.0)
            assert done["status"] == "completed"
            # A healthy follower still sees the full ordered stream.
            events = list(client.stream_events(doc["run_id"]))
            assert events[-1]["event"] == "completed"
        finally:
            slow.close()


class TestMetricsEndpoint:
    def test_exposition_parses_and_covers_lifecycle(self, client):
        doc = client.submit_run(kind="teletest", params={"value": 5})
        client.wait_for_run(doc["run_id"], timeout_s=15.0)
        # Cache hit for the same body.
        client.submit_run(kind="teletest", params={"value": 5})
        status, text = client.request("GET", "/metrics")
        assert status == 200
        parsed = parse_exposition(text)
        families = parsed["types"]
        for name in (
            "repro_api_requests_total",
            "repro_api_runs_total",
            "repro_api_run_seconds",
            "repro_api_queue_depth",
            "repro_api_queue_wait_age_seconds",
            "repro_api_running",
            "repro_api_sse_subscribers",
            "repro_store_entries",
        ):
            assert name in families, name
        assert families["repro_api_run_seconds"] == "histogram"
        by = {}
        for name, labels, value in parsed["samples"]:
            by.setdefault(name, []).append((labels, value))
        accepted = [
            v for labels, v in by["repro_api_requests_total"]
            if labels.get("status") == "accepted"
        ]
        hits = [
            v for labels, v in by["repro_api_requests_total"]
            if labels.get("status") == "cache_hit"
        ]
        assert accepted == [1.0] and hits == [1.0]
        completed = [
            v for labels, v in by["repro_api_runs_total"]
            if labels.get("status") == "completed"
        ]
        assert completed and completed[0] >= 2.0

    def test_content_type_is_prometheus(self, server, client):
        doc = client.submit_run(kind="teletest", params={})
        client.wait_for_run(doc["run_id"], timeout_s=15.0)
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            assert resp.status == 200
            assert "version=0.0.4" in resp.getheader("Content-Type", "")
            resp.read()
        finally:
            conn.close()

    def test_scheduler_job_counters_present(self, client):
        doc = client.submit_run(kind="teletest", params={"value": 1})
        client.wait_for_run(doc["run_id"], timeout_s=15.0)
        parsed = parse_exposition(client.metrics())
        assert "repro_jobs_total" in parsed["types"]
        completed = [
            v for name, labels, v in parsed["samples"]
            if name == "repro_jobs_total"
            and labels.get("status") == "completed"
        ]
        assert completed and completed[0] >= 1.0
