"""Acceptance scenario: one sweep, two tenants, zero duplicate work.

The ISSUE-6 end-to-end criterion: the same sweep submitted twice over
HTTP from two tenants concurrently — the second is served from cache /
single-flight without re-executing, progress events stream in order, and
``GET /leaderboard`` returns a policy ranking consistent with the cached
``SimulationResult`` aggregates.

Runs the *real* simulation path (tiny dataset, quarter-scale workload),
with the production handler wrapped only to count executions.
"""

import math
import threading

import pytest

from repro.api import ApiClient, ApiService, start_server_thread
from repro.service.handlers import run_simulation_job
from repro.service.journal import JobJournal
from repro.service.jobs import register_handler, unregister_handler
from repro.service.store import ResultStore

SWEEP = {
    "workloads": ["kcore"],
    "datasets": ["ldbc-tiny"],
    "policies": ["non-offloading", "coolpim-hw"],
    "workload_scale": 0.25,
}


@pytest.fixture
def executions():
    """Count real simulation executions without changing their behavior."""
    calls = []
    lock = threading.Lock()

    def counting(spec):
        with lock:
            calls.append(spec.key)
        return run_simulation_job(spec)

    register_handler("simulation", counting)
    try:
        yield calls
    finally:
        unregister_handler("simulation")


@pytest.fixture
def server(tmp_path, executions):
    journal = JobJournal(tmp_path / "journal.jsonl")
    service = ApiService(
        store=ResultStore(tmp_path / "cache"), journal=journal, workers=2
    )
    handle = start_server_thread(service)
    try:
        yield handle
    finally:
        handle.stop()
        journal.close()


def _wait_sweep(client, sweep_doc, timeout_s=120.0):
    return [
        client.wait_for_run(run["run_id"], timeout_s=timeout_s)
        for run in sweep_doc["runs"]
    ]


class TestEndToEnd:
    def test_concurrent_sweeps_dedupe_stream_and_rank(
        self, server, executions
    ):
        clients = {
            tenant: ApiClient(server.host, server.port, tenant=tenant)
            for tenant in ("team-a", "team-b")
        }
        barrier = threading.Barrier(2)
        submissions = {}

        def submit(tenant):
            barrier.wait()
            submissions[tenant] = clients[tenant].submit_sweep(**SWEEP)

        threads = [
            threading.Thread(target=submit, args=(t,)) for t in clients
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert set(submissions) == {"team-a", "team-b"}

        done = {
            tenant: _wait_sweep(clients[tenant], doc)
            for tenant, doc in submissions.items()
        }

        # --- no duplicate work: 2 unique jobs → exactly 2 executions ----
        assert len(executions) == 2
        assert len(set(executions)) == 2

        # Per content key, one submission led and the other was absorbed
        # (coalesced onto the in-flight leader, or a cache hit if the
        # leader had already finished).
        by_key = {}
        for tenant, doc in submissions.items():
            for run in doc["runs"]:
                by_key.setdefault(run["key"], []).append(run)
        for key, pair in by_key.items():
            assert len(pair) == 2
            absorbed = [
                r for r in pair
                if r["cached"] or r["coalesced_into"] is not None
            ]
            assert len(absorbed) == 1, f"key {key}: {pair}"

        # --- every run completed with identical results per key ----------
        for runs in done.values():
            for run in runs:
                assert run["status"] == "completed"
        for key, pair in by_key.items():
            results = [
                clients["team-a"].get_run(r["run_id"])["result"]["result"]
                for r in pair
            ]
            assert results[0] == results[1]

        # --- progress events stream in order, ending terminal ------------
        for tenant, doc in submissions.items():
            for run in doc["runs"]:
                events = list(
                    clients[tenant].stream_events(run["run_id"])
                )
                assert [e["seq"] for e in events] == list(
                    range(len(events))
                )
                assert events[0]["event"] == "queued"
                assert events[-1]["event"] == "completed"
                # The terminal event carries the repro.obs metrics
                # snapshot for live runs (the wire-format contract).
                assert events[-1]["result"]["runtime_s"] > 0

        # --- leaderboard consistent with the cached aggregates -----------
        board = clients["team-a"].leaderboard(workload="kcore")
        assert board["scenarios"] == 1
        by_policy = {e["policy"]: e for e in board["policies"]}
        assert set(by_policy) == {"non-offloading", "coolpim-hw"}

        runtimes = {}
        for runs in done.values():
            for run in runs:
                result = run["result"]["result"]
                runtimes[result["policy"]] = result["runtime_s"]
        expected = runtimes["non-offloading"] / runtimes["coolpim-hw"]
        assert math.isclose(
            by_policy["coolpim-hw"]["geomean_speedup"], expected,
            rel_tol=1e-9,
        )
        assert by_policy["non-offloading"]["geomean_speedup"] == 1.0
        ranked = [e["policy"] for e in board["policies"]]
        assert ranked[0] == (
            "coolpim-hw" if expected > 1.0 else "non-offloading"
        )

        # --- a third identical sweep is pure cache: zero new work --------
        resubmit = clients["team-b"].submit_sweep(**SWEEP)
        for run in resubmit["runs"]:
            assert run["cached"] and run["status"] == "completed"
        assert len(executions) == 2
