"""Offloading policy basics and the factory."""

import pytest

from repro.core.hw_dynt import HwDynT
from repro.core.policies import (
    POLICY_NAMES,
    IdealThermal,
    NaiveOffloading,
    NonOffloading,
    make_policy,
)
from repro.core.sw_dynt import SwDynT


class TestStaticPolicies:
    def test_non_offloading_fraction(self):
        assert NonOffloading().pim_fraction(0.0) == 0.0

    def test_naive_fraction(self):
        p = NaiveOffloading()
        assert p.pim_fraction(0.0) == 1.0
        p.on_thermal_warning(1.0)  # ignored by design
        assert p.pim_fraction(2.0) == 1.0

    def test_ideal_is_thermal_exempt(self):
        assert IdealThermal().thermal_exempt
        assert not NaiveOffloading().thermal_exempt

    def test_fraction_history_recording(self):
        p = NonOffloading()
        p.record_fraction(1.0, 0.5)
        assert p.fraction_history == [(1.0, 0.5)]


class TestFactory:
    def test_all_names_construct(self):
        classes = {
            "non-offloading": NonOffloading,
            "naive-offloading": NaiveOffloading,
            "coolpim-sw": SwDynT,
            "coolpim-hw": HwDynT,
            "ideal-thermal": IdealThermal,
        }
        for name, cls in classes.items():
            assert isinstance(make_policy(name), cls)

    def test_policy_names_complete(self):
        assert len(POLICY_NAMES) == 5

    def test_names_match_instances(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("nope")

    def test_kwargs_forwarded(self):
        p = make_policy("coolpim-sw", control_factor=3)
        assert p.control_factor == 3
