"""Offloading policy basics and the factory."""

import pytest

from repro.core.hw_dynt import HwDynT
from repro.core.policies import (
    POLICY_NAMES,
    IdealThermal,
    NaiveOffloading,
    NonOffloading,
    StaticFraction,
    is_policy_name,
    make_policy,
    parse_static_fraction,
)
from repro.core.sw_dynt import SwDynT
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor


def tiny_launch():
    return KernelLaunch(
        name="t",
        trace=TraceCursor([OpBatch(reads=10, writes=5, atomics=10, threads=256)]),
        total_threads=4096,
    )


class TestStaticPolicies:
    def test_non_offloading_fraction(self):
        assert NonOffloading().pim_fraction(0.0) == 0.0

    def test_naive_fraction(self):
        p = NaiveOffloading()
        assert p.pim_fraction(0.0) == 1.0
        p.on_thermal_warning(1.0)  # ignored by design
        assert p.pim_fraction(2.0) == 1.0

    def test_ideal_is_thermal_exempt(self):
        assert IdealThermal().thermal_exempt
        assert not NaiveOffloading().thermal_exempt

    def test_fraction_history_recording(self):
        p = NonOffloading()
        p.record_fraction(1.0, 0.5)
        assert p.fraction_history == [(1.0, 0.5)]


class TestFactory:
    def test_all_names_construct(self):
        classes = {
            "non-offloading": NonOffloading,
            "naive-offloading": NaiveOffloading,
            "coolpim-sw": SwDynT,
            "coolpim-hw": HwDynT,
            "ideal-thermal": IdealThermal,
        }
        for name, cls in classes.items():
            assert isinstance(make_policy(name), cls)

    def test_policy_names_complete(self):
        assert len(POLICY_NAMES) == 5

    def test_names_match_instances(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("nope")

    def test_kwargs_forwarded(self):
        p = make_policy("coolpim-sw", control_factor=3)
        assert p.control_factor == 3


class TestStaticFamily:
    """``static-<fraction>`` names: an open family the factory accepts."""

    def test_factory_builds_static(self):
        p = make_policy("static-0.25")
        assert isinstance(p, StaticFraction)
        assert p.pim_fraction(0.0) == 0.25

    def test_name_round_trips_requested_spelling(self):
        # "static-0.5" must not normalize to "static-0.50": API/CLI
        # callers get back exactly the name they asked for.
        assert make_policy("static-0.5").name == "static-0.5"
        assert make_policy("static-1").name == "static-1"

    def test_parse(self):
        assert parse_static_fraction("static-0.25") == 0.25
        assert parse_static_fraction("static-1") == 1.0
        assert parse_static_fraction("coolpim-sw") is None
        assert parse_static_fraction("static-") is None
        with pytest.raises(ValueError):
            parse_static_fraction("static-1.5")

    def test_is_policy_name(self):
        for name in POLICY_NAMES:
            assert is_policy_name(name)
        assert is_policy_name("static-0.75")
        assert not is_policy_name("static-2.0")  # out of range
        assert not is_policy_name("nope")

    def test_factory_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_policy("static-1.5")

    def test_registry_order_unchanged(self):
        # Figure ordering depends on this exact sequence.
        assert POLICY_NAMES == [
            "non-offloading",
            "naive-offloading",
            "coolpim-sw",
            "coolpim-hw",
            "ideal-thermal",
        ]


class TestResetOnBegin:
    """A policy object reused across launches must not leak history."""

    def test_base_policy_clears_history(self):
        p = NonOffloading()
        p.record_fraction(1.0, 0.5)
        p.begin(tiny_launch())
        assert p.fraction_history == []

    def test_sw_dynt_clears_control_state(self):
        p = SwDynT()
        launch = tiny_launch()
        p.begin(launch)
        p.on_thermal_warning(1.0)
        p.pim_fraction(2.0)
        first_history = list(p.fraction_history)
        first_size = p.ptp_size
        p.begin(launch)
        # History restarts from the initial record, pool re-initialized.
        assert p.fraction_history == first_history[:1]
        assert p.ptp_size >= first_size
        assert p._pending_size is None
        assert p._last_action_s == float("-inf")

    def test_hw_dynt_clears_control_state(self):
        p = HwDynT()
        launch = tiny_launch()
        p.begin(launch)
        p.on_thermal_warning(1.0, 90.0)
        p.pim_fraction(2.0)
        p.begin(launch)
        assert p.fraction_history == [(0.0, 1.0)]
        assert p.pim_fraction(0.0) == 1.0
        assert p._last_temp_c is None
