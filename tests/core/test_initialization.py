"""Eq. (1) PTP initialization."""

import pytest

from repro.core.initialization import (
    PIM_RATE_THRESHOLD_OPS_NS,
    PTP_MARGIN_BLOCKS,
    PtpInitializer,
)
from repro.gpu.config import GPU_DEFAULT
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor


def launch_with(intensity: float, divergence: float) -> KernelLaunch:
    atomics = int(1000 * intensity)
    reads = 1000 - atomics
    return KernelLaunch(
        name="x",
        trace=TraceCursor([
            OpBatch(reads=reads, writes=0, atomics=atomics, threads=1000,
                    divergent_warp_ratio=divergence)
        ]),
        total_threads=100_000,
    )


@pytest.fixture
def init():
    return PtpInitializer()


class TestForwardEquation:
    def test_eq1_shape(self, init):
        # PIMRate = peak x intensity x (PTP/MaxBlk) x (1 - div)
        max_blk = GPU_DEFAULT.max_concurrent_blocks
        rate = init.estimated_rate(max_blk // 2, intensity=0.5, divergence=0.2)
        expected = init.pim_peak_rate_ops_ns * 0.5 * 0.5 * 0.8
        assert rate == pytest.approx(expected)

    def test_rate_caps_at_full_pool(self, init):
        max_blk = GPU_DEFAULT.max_concurrent_blocks
        r1 = init.estimated_rate(max_blk, 0.5, 0.0)
        r2 = init.estimated_rate(max_blk * 2, 0.5, 0.0)
        assert r1 == r2


class TestInverse:
    def test_calculated_size_meets_threshold(self, init):
        size = init.calculated_size(intensity=0.6, divergence=0.1)
        rate = init.estimated_rate(size, 0.6, 0.1)
        assert rate <= PIM_RATE_THRESHOLD_OPS_NS + 1e-9

    def test_low_intensity_unconstrained(self, init):
        size = init.calculated_size(intensity=0.01, divergence=0.0)
        assert size == GPU_DEFAULT.max_concurrent_blocks

    def test_divergence_relaxes_the_pool(self, init):
        tight = init.calculated_size(0.6, divergence=0.0)
        loose = init.calculated_size(0.6, divergence=0.5)
        assert loose > tight

    def test_zero_intensity_no_constraint(self, init):
        assert init.calculated_size(0.0, 0.0) == GPU_DEFAULT.max_concurrent_blocks

    def test_bounds_validated(self, init):
        with pytest.raises(ValueError):
            init.calculated_size(1.5, 0.0)
        with pytest.raises(ValueError):
            init.calculated_size(0.5, -0.1)


class TestInitialSize:
    def test_margin_added(self, init):
        launch = launch_with(intensity=0.6, divergence=0.0)
        size = init.initial_size(launch)
        calc = init.calculated_size(0.6, 0.0)
        assert size == min(calc + PTP_MARGIN_BLOCKS,
                           GPU_DEFAULT.max_concurrent_blocks)

    def test_clamped_to_max_blocks(self, init):
        launch = launch_with(intensity=0.01, divergence=0.0)
        assert init.initial_size(launch) == GPU_DEFAULT.max_concurrent_blocks

    def test_margin_is_four_blocks(self):
        assert PTP_MARGIN_BLOCKS == 4

    def test_threshold_is_papers(self):
        assert PIM_RATE_THRESHOLD_OPS_NS == pytest.approx(1.3)


class TestValidation:
    def test_positive_params(self):
        with pytest.raises(ValueError):
            PtpInitializer(pim_peak_rate_ops_ns=0.0)
        with pytest.raises(ValueError):
            PtpInitializer(rate_threshold_ops_ns=-1.0)
        with pytest.raises(ValueError):
            PtpInitializer(margin_blocks=-1)
