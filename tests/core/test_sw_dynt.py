"""SW-DynT: initialization, throttle delay, rate-limited reduction."""

import pytest

from repro.core.sw_dynt import SwDynT
from repro.gpu.config import GPU_DEFAULT
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor


def hot_launch(intensity=0.6, blocks=64):
    atomics = int(1000 * intensity)
    threads = blocks * GPU_DEFAULT.threads_per_block
    return KernelLaunch(
        name="hot",
        trace=TraceCursor([OpBatch(reads=1000 - atomics, writes=0,
                                   atomics=atomics, threads=threads)]),
        total_threads=threads,
    )


def cool_launch():
    return KernelLaunch(
        name="cool",
        trace=TraceCursor([OpBatch(reads=1000, writes=0, atomics=5,
                                   threads=4096)]),
        total_threads=4096,
    )


class TestInitialization:
    def test_hot_kernel_starts_throttled(self):
        policy = SwDynT()
        policy.begin(hot_launch(), now_s=0.0)
        assert 0.0 < policy.pim_fraction(0.0) < 1.0

    def test_cool_kernel_starts_unthrottled(self):
        policy = SwDynT()
        policy.begin(cool_launch(), now_s=0.0)
        assert policy.pim_fraction(0.0) == 1.0

    def test_begin_resets_state(self):
        policy = SwDynT()
        policy.begin(hot_launch(), now_s=0.0)
        policy.on_thermal_warning(1.0)
        f_throttled = policy.pim_fraction(2.0)
        policy.begin(hot_launch(), now_s=10.0)
        assert policy.pim_fraction(10.0) > f_throttled


class TestReduction:
    def test_warning_reduces_pool(self):
        policy = SwDynT(control_factor=8)
        policy.begin(hot_launch(), now_s=0.0)
        before = policy.ptp_size
        policy.on_thermal_warning(0.0)
        assert policy.ptp_size < before

    def test_reduction_takes_effect_after_throttle_delay(self):
        policy = SwDynT(control_factor=8)
        policy.begin(hot_launch(), now_s=0.0)
        f0 = policy.pim_fraction(0.0)
        policy.on_thermal_warning(0.0)
        # Before Tthrottle: in-flight PIM blocks still running.
        assert policy.pim_fraction(policy.delays.throttle_s / 2) == f0
        # After Tthrottle: reduced.
        assert policy.pim_fraction(policy.delays.throttle_s * 1.1) < f0

    def test_warnings_rate_limited_by_control_step(self):
        policy = SwDynT(control_factor=8)
        policy.begin(hot_launch(), now_s=0.0)
        policy.on_thermal_warning(0.0)
        size_after_first = policy.ptp_size
        # A burst of warnings within the loop delay acts once.
        for t in (1e-5, 2e-5, 3e-5):
            policy.on_thermal_warning(t)
        assert policy.ptp_size == size_after_first
        # After Tthrottle + Tthermal another reduction lands.
        policy.on_thermal_warning(policy.delays.control_step_s + 1e-6)
        assert policy.ptp_size < size_after_first

    def test_fraction_floor_zero(self):
        policy = SwDynT(control_factor=1000)
        policy.begin(hot_launch(), now_s=0.0)
        t = 0.0
        for _ in range(5):
            policy.on_thermal_warning(t)
            t += policy.delays.control_step_s + 1e-6
        assert policy.pim_fraction(t + 1.0) >= 0.0

    def test_warning_before_begin_is_noop(self):
        SwDynT().on_thermal_warning(0.0)  # must not raise


class TestValidation:
    def test_positive_cf(self):
        with pytest.raises(ValueError):
            SwDynT(control_factor=0)
