"""HW-DynT: PCU warp throttling with delayed/settling control."""

import pytest

from repro.core.hw_dynt import SETTLE_EPSILON_C, HwDynT
from repro.gpu.config import GPU_DEFAULT
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor


def launch(warps=512):
    threads = warps * GPU_DEFAULT.threads_per_warp
    return KernelLaunch(
        name="x",
        trace=TraceCursor([OpBatch(reads=10, writes=0, atomics=10,
                                   threads=threads)]),
        total_threads=threads,
    )


class TestInitialization:
    def test_starts_fully_enabled(self):
        # Sec. IV-C: "we set the initial number of PIM-enabled warps to
        # the maximum" — no static analysis required.
        policy = HwDynT()
        policy.begin(launch(), now_s=0.0)
        assert policy.pim_fraction(0.0) == 1.0
        assert policy.enabled_warps == 512

    def test_active_warps_capped_by_hardware(self):
        policy = HwDynT()
        policy.begin(launch(warps=10_000), now_s=0.0)
        assert policy.enabled_warps == GPU_DEFAULT.max_concurrent_warps


class TestThrottling:
    def test_first_warning_reduces(self):
        policy = HwDynT(control_factor=32)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1e-3, temp_c=86.0)
        assert policy.enabled_warps == 512 - 32

    def test_fast_apply_delay(self):
        policy = HwDynT(control_factor=32)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1e-3, temp_c=86.0)
        # HW Tthrottle is ~0.1 us: effective almost immediately.
        assert policy.pim_fraction(1e-3 + 1e-6) == pytest.approx(480 / 512)

    def test_rising_temperature_allows_rapid_steps(self):
        policy = HwDynT(control_factor=32)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1.0e-3, temp_c=86.0)
        policy.on_thermal_warning(1.1e-3, temp_c=87.0)  # rising: act now
        assert policy.enabled_warps == 512 - 64

    def test_falling_temperature_suppresses_steps(self):
        # Sec. IV-C delayed updates: a falling temperature means the last
        # reduction is still taking effect.
        policy = HwDynT(control_factor=32)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1.0e-3, temp_c=90.0)
        policy.on_thermal_warning(2.5e-3, temp_c=89.0)  # falling
        policy.on_thermal_warning(4.0e-3, temp_c=88.0)  # still falling
        assert policy.enabled_warps == 512 - 32

    def test_settled_hot_takes_one_step_per_thermal_period(self):
        policy = HwDynT(control_factor=32)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1.0e-3, temp_c=88.0)
        # settled (same temp) but within Tthermal: no action
        policy.on_thermal_warning(1.5e-3, temp_c=88.0)
        assert policy.enabled_warps == 512 - 32
        # settled and Tthermal elapsed: one more step
        policy.on_thermal_warning(2.5e-3, temp_c=88.0)
        assert policy.enabled_warps == 512 - 64

    def test_enabled_never_negative(self):
        policy = HwDynT(control_factor=10_000)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1e-3, temp_c=90.0)
        assert policy.enabled_warps == 0
        assert policy.pim_fraction(1.0) == 0.0

    def test_warp_granularity_finer_than_blocks(self):
        # One HW step moves the fraction by CF/active_warps — finer than
        # SW's one-block quantum when CF < warps_per_block x blocks step.
        policy = HwDynT(control_factor=1)
        policy.begin(launch(), now_s=0.0)
        policy.on_thermal_warning(1e-3, temp_c=86.0)
        f = policy.pim_fraction(2e-3)
        assert f == pytest.approx(511 / 512)


class TestValidation:
    def test_positive_cf(self):
        with pytest.raises(ValueError):
            HwDynT(control_factor=0)
