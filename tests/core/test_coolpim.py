"""CoolPimSystem facade on tiny graphs."""

import pytest

from repro.core import CoolPimSystem
from repro.graph import get_dataset
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def system():
    return CoolPimSystem()


@pytest.fixture(scope="module")
def graph():
    return get_dataset("ldbc-tiny")


class TestRun:
    def test_run_by_policy_name(self, system, graph):
        res = system.run(get_workload("pagerank"), graph, "non-offloading")
        assert res.policy == "non-offloading"
        assert res.workload == "pagerank"
        assert res.runtime_s > 0

    def test_run_with_policy_instance(self, system, graph):
        from repro.core.policies import NaiveOffloading

        res = system.run(get_workload("dc"), graph, NaiveOffloading())
        assert res.policy == "naive-offloading"

    def test_launch_cache_reuses_trace(self, system, graph):
        w = get_workload("dc")
        r1 = system.run(w, graph, "non-offloading")
        r2 = system.run(w, graph, "non-offloading")
        assert r1.runtime_s == pytest.approx(r2.runtime_s)

    def test_run_all_policies_keys(self, system, graph):
        res = system.run_all_policies(get_workload("kcore"), graph)
        assert set(res) == {
            "non-offloading", "naive-offloading", "coolpim-sw",
            "coolpim-hw", "ideal-thermal",
        }

    def test_policy_subset(self, system, graph):
        res = system.run_all_policies(
            get_workload("kcore"), graph,
            policies=["non-offloading", "ideal-thermal"],
        )
        assert list(res) == ["non-offloading", "ideal-thermal"]

    def test_offloading_ordering_invariant(self, system, graph):
        """Ideal >= CoolPIM >= non-offloading on a cool (tiny) run."""
        res = system.run_all_policies(get_workload("pagerank"), graph)
        base = res["non-offloading"]
        su_ideal = res["ideal-thermal"].speedup_over(base)
        su_hw = res["coolpim-hw"].speedup_over(base)
        assert su_ideal >= su_hw >= 0.99
