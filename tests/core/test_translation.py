"""Table III mapping: bidirectional PIM ⇄ CUDA atomic translation."""

import pytest

from repro.core.translation import (
    CUDA_TO_PIM,
    PIM_TO_CUDA,
    cuda_atomic_for,
    is_offloadable,
    pim_opcode_for_cuda,
    roundtrip_consistent,
)
from repro.hmc.isa import PimOpcode


class TestTableIII:
    """The exact Table III examples."""

    def test_arithmetic_add_maps_to_atomicadd(self):
        assert cuda_atomic_for(PimOpcode.ADD_IMM) == "atomicAdd"

    def test_bitwise_swap_maps_to_atomicexch(self):
        assert cuda_atomic_for(PimOpcode.SWAP) == "atomicExch"
        assert cuda_atomic_for(PimOpcode.BIT_WRITE) == "atomicExch"

    def test_boolean_and_or(self):
        assert cuda_atomic_for(PimOpcode.AND_IMM) == "atomicAnd"
        assert cuda_atomic_for(PimOpcode.OR_IMM) == "atomicOr"

    def test_comparison_cas_and_max(self):
        assert cuda_atomic_for(PimOpcode.CAS_EQUAL) == "atomicCAS"
        assert cuda_atomic_for(PimOpcode.CAS_GREATER) == "atomicMax"


class TestCompleteness:
    def test_every_opcode_has_cuda_equivalent(self):
        # Sec. IV-C: "all PIM instructions have a corresponding CUDA
        # instruction" — required for dynamic translation.
        for opcode in PimOpcode:
            assert opcode in PIM_TO_CUDA

    def test_roundtrip_consistency(self):
        assert roundtrip_consistent()

    def test_compiler_prefers_no_return_variants(self):
        # atomicAdd maps to ADD_IMM (3 FLITs), not ADD_IMM_RET (4 FLITs).
        assert CUDA_TO_PIM["atomicAdd"] is PimOpcode.ADD_IMM

    def test_offloadable_detection(self):
        assert is_offloadable("atomicAdd")
        assert not is_offloadable("atomicXor_unsupported")

    def test_unknown_cuda_atomic_raises_with_hint(self):
        with pytest.raises(KeyError) as exc:
            pim_opcode_for_cuda("atomicNope")
        assert "atomicAdd" in str(exc.value)
