"""PIM token pool: FCFS issue, release, interrupt-driven reduction."""

import pytest

from repro.core.token_pool import PimTokenPool


class TestIssue:
    def test_grants_until_exhausted(self):
        pool = PimTokenPool(size=2)
        assert pool.request() and pool.request()
        assert not pool.request()
        assert pool.grants == 2 and pool.denials == 1

    def test_release_enables_reissue(self):
        pool = PimTokenPool(size=1)
        pool.request()
        pool.release()
        assert pool.request()

    def test_release_without_issue_raises(self):
        with pytest.raises(ValueError):
            PimTokenPool(size=1).release()

    def test_available(self):
        pool = PimTokenPool(size=3)
        pool.request()
        assert pool.available == 2


class TestReduction:
    def test_paper_formula(self):
        # PTP = min(PTP - CF, #issuedToken)
        pool = PimTokenPool(size=20, issued=10)
        assert pool.reduce(4) == 10       # min(16, 10)
        pool2 = PimTokenPool(size=20, issued=19)
        assert pool2.reduce(4) == 16      # min(16, 19)

    def test_never_negative(self):
        pool = PimTokenPool(size=2, issued=1)
        assert pool.reduce(10) == 0

    def test_outstanding_tokens_not_revoked(self):
        pool = PimTokenPool(size=10, issued=10)
        pool.reduce(6)
        # issued stays at 10 until blocks drain; no new grants meanwhile.
        assert pool.issued == 10
        assert not pool.request()

    def test_resize_history(self):
        pool = PimTokenPool(size=10, issued=10)
        pool.reduce(2, now_s=1.0)
        pool.reduce(2, now_s=2.0)
        assert pool.resize_history == [(1.0, 8), (2.0, 6)]

    def test_negative_cf_rejected(self):
        with pytest.raises(ValueError):
            PimTokenPool(size=5).reduce(-1)


class TestValidation:
    def test_negative_size(self):
        with pytest.raises(ValueError):
            PimTokenPool(size=-1)

    def test_issued_bounds(self):
        with pytest.raises(ValueError):
            PimTokenPool(size=2, issued=3)
