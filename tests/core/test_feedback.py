"""Feedback delays and the delay line."""

import pytest

from repro.core.feedback import DelayLine, FeedbackDelays


class TestDelays:
    def test_software_delays_match_fig8(self):
        d = FeedbackDelays.software()
        assert d.throttle_s == pytest.approx(0.1e-3)
        assert d.thermal_s == pytest.approx(1e-3)

    def test_hardware_throttle_is_microseconds(self):
        d = FeedbackDelays.hardware()
        assert d.throttle_s == pytest.approx(0.1e-6)

    def test_hw_throttle_orders_of_magnitude_faster(self):
        # Fig. 8: ~0.1 ms vs ~0.1 us.
        assert FeedbackDelays.software().throttle_s / \
            FeedbackDelays.hardware().throttle_s == pytest.approx(1000.0)

    def test_control_step_is_sum(self):
        d = FeedbackDelays(throttle_s=2e-3, thermal_s=3e-3)
        assert d.control_step_s == pytest.approx(5e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FeedbackDelays(throttle_s=-1.0)


class TestDelayLine:
    def test_delivers_after_delay(self):
        line = DelayLine(delay_s=1.0)
        line.push(0.0, "a")
        assert line.pop_ready(0.5) == []
        assert line.pop_ready(1.0) == ["a"]
        assert line.pop_ready(2.0) == []

    def test_preserves_order(self):
        line = DelayLine(delay_s=0.5)
        line.push(0.0, "first")
        line.push(0.1, "second")
        assert line.pop_ready(1.0) == ["first", "second"]

    def test_partial_delivery(self):
        line = DelayLine(delay_s=1.0)
        line.push(0.0, "early")
        line.push(5.0, "late")
        assert line.pop_ready(1.0) == ["early"]
        assert len(line) == 1

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            DelayLine(delay_s=-0.1)
