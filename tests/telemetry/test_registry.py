"""Telemetry registry: families, labels, deltas, and merges."""

import threading

import pytest

from repro.telemetry.registry import (
    DELTA_SCHEMA_ID,
    TelemetryRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def reg():
    return TelemetryRegistry()


class TestCounters:
    def test_unlabelled_counter_accumulates(self, reg):
        c = reg.counter("jobs_total", help="jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("jobs_total")
        with pytest.raises(ValueError, match=">= 0"):
            c._default.inc(-1)

    def test_labelled_children_are_independent(self, reg):
        fam = reg.counter("runs_total", labelnames=("status",))
        fam.labels(status="ok").inc(2)
        fam.labels(status="failed").inc()
        assert fam.labels(status="ok").value == 2.0
        assert fam.labels(status="failed").value == 1.0

    def test_labels_memoized(self, reg):
        fam = reg.counter("x", labelnames=("a",))
        assert fam.labels(a="1") is fam.labels(a="1")

    def test_label_mismatch_raises(self, reg):
        fam = reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="labelnames"):
            fam.labels(b="1")

    def test_reregistration_conflicting_kind_raises(self, reg):
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_reregistration_conflicting_labels_raises(self, reg):
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x", labelnames=("b",))


class TestGauges:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.value == 8.0


class TestHistograms:
    def test_observe_buckets_and_sum(self, reg):
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        child = h._default
        assert child.counts == [1, 1, 1]
        assert child.cumulative_counts() == [1, 2, 3]
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)

    def test_percentile_empty_returns_none(self, reg):
        h = reg.histogram("lat")
        assert h.percentile(50) is None
        h.observe(1.0)
        assert h.percentile(50) == pytest.approx(1.0)

    def test_percentile_out_of_range_raises(self, reg):
        h = reg.histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_sample_ring_is_bounded(self, reg):
        h = reg.histogram("lat", sample_window=4)
        for i in range(10):
            h.observe(float(i))
        assert list(h._default.samples) == [6.0, 7.0, 8.0, 9.0]

    def test_unsorted_bounds_rejected(self, reg):
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("h", buckets=(1.0, 0.5))


class TestDeltaPipe:
    def test_quiescent_registry_flushes_none(self, reg):
        reg.counter("c")
        assert reg.flush_deltas() is None

    def test_counter_delta_roundtrip(self, reg):
        parent = TelemetryRegistry()
        fam = reg.counter("jobs", labelnames=("kind",))
        fam.labels(kind="sim").inc(3)
        doc = reg.flush_deltas()
        assert doc["schema"] == DELTA_SCHEMA_ID
        parent.merge(doc)
        assert parent.counter(
            "jobs", labelnames=("kind",)
        ).labels(kind="sim").value == 3.0
        # Nothing new → no re-flush on either side.
        assert reg.flush_deltas() is None
        assert parent.flush_deltas() is None

    def test_incremental_flushes_never_double_count(self, reg):
        parent = TelemetryRegistry()
        c = reg.counter("c")
        c.inc(2)
        parent.merge(reg.flush_deltas())
        c.inc(5)
        parent.merge(reg.flush_deltas())
        assert parent.counter("c").value == 7.0

    def test_gauge_is_last_value_wins(self, reg):
        parent = TelemetryRegistry()
        g = reg.gauge("depth")
        g.set(5)
        parent.merge(reg.flush_deltas())
        g.set(2)
        parent.merge(reg.flush_deltas())
        assert parent.gauge("depth").value == 2.0

    def test_histogram_delta_merges_counts_sum_samples(self, reg):
        parent = TelemetryRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        parent.merge(reg.flush_deltas())
        h.observe(20.0)
        parent.merge(reg.flush_deltas())
        merged = parent.histogram("lat", buckets=(1.0, 10.0))._default
        assert merged.counts == [1, 1, 1]
        assert merged.count == 3
        assert merged.sum == pytest.approx(25.5)
        assert merged.percentile(50) == pytest.approx(5.0)

    def test_histogram_bounds_mismatch_raises(self, reg):
        parent = TelemetryRegistry()
        parent.histogram("lat", buckets=(1.0,)).observe(0.5)
        reg.histogram("lat", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="mismatch"):
            parent.merge(reg.flush_deltas())

    def test_merge_rejects_unknown_schema(self, reg):
        with pytest.raises(ValueError, match="schema"):
            reg.merge({"schema": "bogus/9"})

    def test_merged_values_do_not_reflush(self, reg):
        """A parent that is itself flushed upward must not re-ship what
        it merely merged (watermarks advance on merge)."""
        child = TelemetryRegistry()
        child.counter("c").inc(4)
        reg.merge(child.flush_deltas())
        assert reg.flush_deltas() is None


class TestDefaults:
    def test_default_registry_swap(self):
        fresh = TelemetryRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_snapshot_is_json_friendly(self, reg):
        import json

        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        json.dumps(reg.snapshot())

    def test_concurrent_label_creation_is_safe(self, reg):
        fam = reg.counter("c", labelnames=("i",))
        errors = []

        def spin(base):
            try:
                for i in range(200):
                    fam.labels(i=str(i % 10)).inc()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=spin, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = sum(child.value for child in fam.children())
        assert total == 800.0
