"""Prometheus text exposition: rendering and the matching validator."""

import pytest

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    ExpositionError,
    parse_exposition,
    render_exposition,
)
from repro.telemetry.registry import TelemetryRegistry


@pytest.fixture
def reg():
    return TelemetryRegistry()


class TestRender:
    def test_empty_registry_renders_empty(self, reg):
        assert render_exposition(reg) == ""

    def test_counter_with_help_and_type(self, reg):
        reg.counter("jobs_total", help="Jobs processed.").inc(3)
        text = render_exposition(reg)
        assert "# HELP jobs_total Jobs processed." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3\n" in text

    def test_labels_rendered_and_escaped(self, reg):
        fam = reg.counter("c", labelnames=("tenant",))
        fam.labels(tenant='we"ird\\name').inc()
        text = render_exposition(reg)
        assert 'tenant="we\\"ird\\\\name"' in text
        parsed = parse_exposition(text)
        (name, labels, value) = parsed["samples"][0]
        assert labels["tenant"] == 'we"ird\\name'

    def test_histogram_expansion(self, reg):
        h = reg.histogram("lat", help="latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_exposition(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum" in text

    def test_content_type_pins_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestParse:
    def test_roundtrip(self, reg):
        reg.counter("c", labelnames=("k",)).labels(k="v").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        parsed = parse_exposition(render_exposition(reg))
        assert parsed["types"] == {
            "c": "counter", "g": "gauge", "h": "histogram"
        }
        by_name = {}
        for name, labels, value in parsed["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["c"] == [({"k": "v"}, 2.0)]
        assert by_name["g"] == [({}, 1.5)]
        assert by_name["h_count"] == [({}, 1.0)]

    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError, match="no TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_duplicate_type_rejected(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError, match="value"):
            parse_exposition("# TYPE a counter\na one\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ExpositionError):
            parse_exposition('# TYPE a counter\na{k=unquoted} 1\n')

    def test_histogram_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_count 1\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            parse_exposition(text)

    def test_histogram_decreasing_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
        )
        with pytest.raises(ExpositionError, match="decrease"):
            parse_exposition(text)

    def test_histogram_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="_count"):
            parse_exposition(text)
