"""Perf-trend gate: baselines, tolerance bands, exit codes."""

import json

import pytest

from repro.telemetry.trend import (
    BASELINES_SCHEMA_ID,
    TrendError,
    evaluate,
    load_baselines,
    render_trend_report,
    resolve_metric,
    run_trend,
)


def write_json(path, doc):
    path.write_text(json.dumps(doc))
    return path


def baselines_doc(metrics):
    return {
        "schema": BASELINES_SCHEMA_ID,
        "benchmarks": {
            "bench": {"source": "BENCH_x.json", "metrics": metrics}
        },
    }


@pytest.fixture
def bench_dir(tmp_path):
    return tmp_path


class TestLoadBaselines:
    def test_valid_document_loads(self, tmp_path):
        p = write_json(
            tmp_path / "b.json",
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
        )
        doc = load_baselines(p)
        assert "bench" in doc["benchmarks"]

    def test_missing_file_is_trend_error(self, tmp_path):
        with pytest.raises(TrendError, match="not found"):
            load_baselines(tmp_path / "nope.json")

    def test_bad_schema_rejected(self, tmp_path):
        p = write_json(tmp_path / "b.json", {"schema": "other/1"})
        with pytest.raises(TrendError, match="schema"):
            load_baselines(p)

    def test_metric_without_band_rejected(self, tmp_path):
        p = write_json(
            tmp_path / "b.json", baselines_doc({"m": {"baseline": 1.0}})
        )
        with pytest.raises(TrendError, match="min_ratio"):
            load_baselines(p)


class TestResolveMetric:
    def test_dotted_lookup(self):
        doc = {"policies": {"coolpim-hw": {"speedup": 4.8}}}
        assert resolve_metric(doc, "policies.coolpim-hw.speedup") == 4.8

    def test_absent_or_non_numeric_is_none(self):
        assert resolve_metric({}, "a.b") is None
        assert resolve_metric({"a": "text"}, "a") is None
        assert resolve_metric({"a": True}, "a") is None


class TestEvaluate:
    def test_within_band_is_ok(self, bench_dir):
        write_json(bench_dir / "BENCH_x.json", {"speed": 1.9})
        rows = evaluate(
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
            bench_dir,
        )
        assert [r.status for r in rows] == ["ok"]

    def test_min_ratio_floor_trips(self, bench_dir):
        write_json(bench_dir / "BENCH_x.json", {"speed": 0.5})
        rows = evaluate(
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
            bench_dir,
        )
        assert rows[0].status == "regression"
        assert "floor" in rows[0].note

    def test_max_ratio_ceiling_trips(self, bench_dir):
        write_json(bench_dir / "BENCH_x.json", {"wall_s": 10.0})
        rows = evaluate(
            baselines_doc({"wall_s": {"baseline": 2.0, "max_ratio": 3.0}}),
            bench_dir,
        )
        assert rows[0].status == "regression"
        assert "ceiling" in rows[0].note

    def test_missing_artifact_marks_all_missing(self, bench_dir):
        rows = evaluate(
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
            bench_dir,
        )
        assert rows[0].status == "missing"

    def test_missing_metric_in_artifact(self, bench_dir):
        write_json(bench_dir / "BENCH_x.json", {"other": 1})
        rows = evaluate(
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
            bench_dir,
        )
        assert rows[0].status == "missing"


class TestRunTrend:
    def _setup(self, tmp_path, current, check):
        write_json(tmp_path / "BENCH_x.json", {"speed": current})
        baselines = write_json(
            tmp_path / "baselines.json",
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
        )
        return run_trend(tmp_path, baselines, check=check)

    def test_pass_exits_zero(self, tmp_path):
        code, report = self._setup(tmp_path, 2.1, check=True)
        assert code == 0
        assert "all within tolerance" in report

    def test_regression_with_check_exits_one(self, tmp_path):
        code, report = self._setup(tmp_path, 0.1, check=True)
        assert code == 1
        assert "out of tolerance" in report

    def test_regression_without_check_is_informational(self, tmp_path):
        code, _ = self._setup(tmp_path, 0.1, check=False)
        assert code == 0

    def test_structural_error_exits_two(self, tmp_path):
        code, report = run_trend(tmp_path, tmp_path / "missing.json",
                                 check=True)
        assert code == 2
        assert "error" in report

    def test_report_written_to_file(self, tmp_path):
        write_json(tmp_path / "BENCH_x.json", {"speed": 2.0})
        baselines = write_json(
            tmp_path / "baselines.json",
            baselines_doc({"speed": {"baseline": 2.0, "min_ratio": 0.5}}),
        )
        out = tmp_path / "out" / "trend.txt"
        code, report = run_trend(tmp_path, baselines, report_path=out)
        assert code == 0
        assert out.read_text() == report

    def test_report_renders_ratio_column(self, tmp_path):
        _, report = self._setup(tmp_path, 1.0, check=False)
        assert "0.50x" in report


class TestCommittedBaselines:
    def test_repo_baselines_are_valid_and_cover_bench_artifact(self):
        """The committed baselines must load and match the committed
        BENCH_simulator.json on a green tree."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        doc = load_baselines(root / "benchmarks" / "baselines.json")
        rows = evaluate(doc, root)
        assert rows, "baselines cover no metrics"
        bad = [r for r in rows if r.status != "ok"]
        assert not bad, render_trend_report(rows)

    def test_synthetic_regression_trips_gate(self, tmp_path):
        """Injecting a 10x slowdown into the bench artifact must fail
        the --check gate (the CI criterion)."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        bench = json.loads((root / "BENCH_simulator.json").read_text())
        bench["aggregate_speedup"] = bench["aggregate_speedup"] / 10.0
        write_json(tmp_path / "BENCH_simulator.json", bench)
        code, report = run_trend(
            tmp_path, root / "benchmarks" / "baselines.json", check=True
        )
        assert code == 1
        assert "regression" in report
