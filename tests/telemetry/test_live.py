"""Live run-telemetry sink: budget, coalescing, thread-local install."""

import threading

import pytest

from repro.telemetry.live import (
    RunTelemetrySink,
    get_run_sink,
    run_telemetry,
    set_run_sink,
)


def make_sink(out, **kwargs):
    return RunTelemetrySink(emit=out.append, **kwargs)


class TestBudget:
    def test_first_sample_always_due(self):
        out = []
        sink = make_sink(out)
        assert sink.next_due_s == 0.0
        sink.emit_sample({"t_s": 0.0})
        assert len(out) == 1

    def test_next_due_advances_by_interval(self):
        out = []
        sink = make_sink(out, interval_s=0.5)
        sink.emit_sample({"t_s": 1.0})
        assert sink.next_due_s == pytest.approx(1.5)

    def test_max_samples_caps_emissions_last_value_wins(self):
        out = []
        sink = make_sink(out, max_samples=3)
        for i in range(10):
            sink.emit_sample({"t_s": float(i), "i": i})
        assert len(out) == 3
        assert sink.coalesced == 7
        sink.close()
        # close() flushes the freshest pending sample: bound is N+1.
        assert len(out) == 4
        assert out[-1]["i"] == 9

    def test_wall_clock_coalescing(self):
        clock = [0.0]
        out = []
        sink = RunTelemetrySink(
            emit=out.append, min_wall_interval_s=1.0,
            clock=lambda: clock[0],
        )
        sink.emit_sample({"t_s": 0.0, "i": 0})
        sink.emit_sample({"t_s": 1.0, "i": 1})  # too soon: held back
        sink.emit_sample({"t_s": 2.0, "i": 2})  # replaces pending
        assert [s["i"] for s in out] == [0]
        clock[0] = 2.0
        sink.emit_sample({"t_s": 3.0, "i": 3})
        assert [s["i"] for s in out] == [0, 3]
        sink.close()
        assert [s["i"] for s in out] == [0, 3]  # pending was consumed

    def test_close_is_idempotent_and_seals(self):
        out = []
        sink = make_sink(out)
        sink.emit_sample({"t_s": 0.0})
        sink.close()
        sink.close()
        sink.emit_sample({"t_s": 9.0})
        assert len(out) == 1
        assert sink.next_due_s == float("inf")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RunTelemetrySink(emit=lambda s: None, max_samples=0)
        with pytest.raises(ValueError):
            RunTelemetrySink(emit=lambda s: None, interval_s=0.0)


class TestThreadLocalInstall:
    def test_default_is_none(self):
        assert get_run_sink() is None

    def test_context_manager_installs_and_restores(self):
        out = []
        sink = make_sink(out)
        with run_telemetry(sink) as active:
            assert active is sink
            assert get_run_sink() is sink
        assert get_run_sink() is None
        assert sink._closed  # closed on exit

    def test_nesting_restores_previous(self):
        a, b = make_sink([]), make_sink([])
        with run_telemetry(a):
            with run_telemetry(b):
                assert get_run_sink() is b
            assert get_run_sink() is a
        assert get_run_sink() is None

    def test_sinks_do_not_leak_across_threads(self):
        seen = {}
        sink = make_sink([])

        def probe():
            seen["other"] = get_run_sink()

        previous = set_run_sink(sink)
        try:
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        finally:
            set_run_sink(previous)
        assert seen["other"] is None
