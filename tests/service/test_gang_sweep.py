"""Gang-sweep job kind: handler payload shape and member cache fan-out.

The service contract (ISSUE 10 tentpole): a ``gang_sweep`` job runs one
workload's policy configurations as a lockstep gang on one worker, and
its member results land in the :class:`ResultStore` under exactly the
``simulation`` keys a per-run sweep would have written — so the gang is
invisible to everything downstream of the store (cache hits,
single-flight, leaderboard).
"""

import pytest

from repro.service import (
    JobScheduler,
    ResultStore,
    gang_sweep_spec,
    resolve_handler,
    run_gang_sweep_job,
    simulation_spec,
)

POLICIES = ["non-offloading", "coolpim-hw"]


def make_spec(**kw):
    kw.setdefault("workload", "pagerank")
    kw.setdefault("policies", POLICIES)
    kw.setdefault("dataset", "ldbc-tiny")
    kw.setdefault("workload_scale", 0.25)
    return gang_sweep_spec(**kw)


@pytest.fixture(scope="module")
def payload():
    return run_gang_sweep_job(make_spec())


class TestSpec:
    def test_kind_resolves_to_builtin_handler(self):
        assert resolve_handler("gang_sweep") is run_gang_sweep_job

    def test_key_depends_on_member_list(self):
        a = make_spec()
        b = make_spec(policies=POLICIES + ["coolpim-sw"])
        assert a.key != b.key
        assert a.key == make_spec().key

    def test_scale_keeps_default_key_rule(self):
        # Like simulation specs: workload_scale enters the key only when
        # it differs from 1.0.
        full = gang_sweep_spec("pagerank", POLICIES)
        assert "workload_scale" not in full.params


class TestHandler:
    def test_payload_carries_one_member_per_policy(self, payload):
        assert payload["engine"] == "gang"
        assert payload["policies"] == POLICIES
        assert [m["payload"]["policy"] for m in payload["members"]] == POLICIES

    def test_member_specs_are_per_run_simulation_identities(self, payload):
        for policy, member in zip(POLICIES, payload["members"]):
            expect = simulation_spec(
                "pagerank", dataset="ldbc-tiny", policy=policy,
                workload_scale=0.25, engine="gang",
            )
            got = member["spec"]
            assert got["kind"] == "simulation"
            assert got["params"] == expect.params
            # Identity equals the macro per-run spec: engine is
            # cache-key-stable across the bit-equal family.
            macro = simulation_spec(
                "pagerank", dataset="ldbc-tiny", policy=policy,
                workload_scale=0.25, engine="macro",
            )
            assert expect.key == macro.key

    def test_member_payload_matches_per_run_shape(self, payload):
        member = payload["members"][0]["payload"]
        for key in ("workload", "dataset", "policy", "cooling", "seed",
                    "result", "metrics"):
            assert key in member
        assert member["result"]["runtime_s"] > 0


class TestSchedulerFanout:
    def test_members_become_per_run_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        report = JobScheduler(store=store, serial=True).run([spec])
        assert not report.failures and report.executed == 1

        per_run = [
            simulation_spec("pagerank", dataset="ldbc-tiny", policy=p,
                            workload_scale=0.25)
            for p in POLICIES
        ]
        rerun = JobScheduler(store=store, serial=True).run(per_run)
        assert not rerun.failures
        assert rerun.cache_hits == len(POLICIES)
        assert rerun.executed == 0
        for spec_, policy in zip(per_run, POLICIES):
            assert rerun.results[spec_.key].payload["policy"] == policy

    def test_gang_job_itself_is_cacheable(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        first = JobScheduler(store=store, serial=True).run([spec])
        assert first.executed == 1
        second = JobScheduler(store=store, serial=True).run([spec])
        assert second.cache_hits == 1 and second.executed == 0
