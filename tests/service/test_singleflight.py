"""Single-flight groups: leader/follower protocol and scheduler coalescing."""

import threading
import time

from repro.service.jobs import JobSpec, register_handler, unregister_handler
from repro.service.scheduler import JobScheduler
from repro.service.singleflight import SingleFlight
from repro.service.store import ResultStore


class TestSingleFlight:
    def test_first_claim_leads_second_follows(self):
        group = SingleFlight()
        assert group.claim("k") is None  # leader
        flight = group.claim("k")
        assert flight is not None  # follower
        assert group.in_flight("k")
        group.publish("k", "outcome")
        assert flight.wait(timeout=1.0) == "outcome"
        assert not group.in_flight("k")

    def test_key_reclaimable_after_publish(self):
        group = SingleFlight()
        assert group.claim("k") is None
        group.publish("k", "first")
        assert group.claim("k") is None  # fresh flight, new leader
        assert len(group) == 1

    def test_abort_publishes_none_and_follower_retries(self):
        group = SingleFlight()
        assert group.claim("k") is None
        flight = group.claim("k")
        group.publish("k", None)  # leader aborted without an outcome
        assert flight.wait(timeout=1.0) is None
        assert group.claim("k") is None  # follower takes over as leader

    def test_publish_without_claim_is_noop(self):
        group = SingleFlight()
        group.publish("never-claimed", "x")
        assert len(group) == 0

    def test_concurrent_claims_elect_one_leader(self):
        group = SingleFlight()
        outcomes = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            flight = group.claim("k")
            if flight is None:
                time.sleep(0.01)
                group.publish("k", "done")
                outcomes.append("led")
            else:
                outcomes.append(flight.wait(timeout=5.0))

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert outcomes.count("led") == 1
        assert outcomes.count("done") == 7


def _slow_spec(n: int = 1) -> JobSpec:
    return JobSpec(kind="sf-slow", name="slow", params={"n": n})


class TestSchedulerCoalescing:
    """Two racing schedulers on one spec: exactly one execution."""

    def setup_method(self):
        self.calls = []
        self.release = threading.Event()
        self.started = threading.Event()

        def handler(spec):
            self.started.set()
            self.calls.append(spec.key)
            assert self.release.wait(10.0)
            return {"n": spec.params["n"]}

        register_handler("sf-slow", handler)

    def teardown_method(self):
        self.release.set()
        unregister_handler("sf-slow")

    def test_racing_schedulers_execute_once(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _slow_spec()
        reports = {}

        def run(tag):
            scheduler = JobScheduler(store=store, serial=True)
            reports[tag] = scheduler.run([spec])

        first = threading.Thread(target=run, args=("first",))
        first.start()
        assert self.started.wait(5.0)  # leader is inside the handler
        second = threading.Thread(target=run, args=("second",))
        second.start()
        time.sleep(0.05)  # let the second scheduler reach its claim
        self.release.set()
        first.join(10.0)
        second.join(10.0)

        assert len(self.calls) == 1  # the handler ran exactly once
        r1 = reports["first"].results[spec.key]
        r2 = reports["second"].results[spec.key]
        assert r1.payload == r2.payload == {"n": 1}
        # Exactly one of the two runs coalesced onto the other (which one
        # depends on whether the store write or the claim raced ahead).
        assert sorted([r1.coalesced, r2.coalesced]) == [False, True]
        coalesced_report = (
            reports["second"] if r2.coalesced else reports["first"]
        )
        assert coalesced_report.coalesced == 1

    def test_single_flight_disabled_runs_both(self, tmp_path):
        self.release.set()  # no blocking needed here
        store = ResultStore(tmp_path / "cache")
        spec = _slow_spec(2)
        # use_cache=False so the second run can't dedupe via the store
        s1 = JobScheduler(store=store, serial=True, use_cache=False,
                          single_flight=False)
        s2 = JobScheduler(store=store, serial=True, use_cache=False,
                          single_flight=False)
        s1.run([spec])
        s2.run([spec])
        assert len(self.calls) == 2
