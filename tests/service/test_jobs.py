"""JobSpec identity: canonical hashing, serialization, handler resolution."""

import pytest

from repro.service.jobs import (
    JobFailure,
    JobResult,
    JobSpec,
    UnknownJobKindError,
    canonical_json,
    register_handler,
    resolve_handler,
    unregister_handler,
)


def spec(**overrides) -> JobSpec:
    base = dict(
        kind="simulation",
        name="pagerank/coolpim-hw@ldbc",
        params={"workload": "pagerank", "policy": "coolpim-hw", "dataset": "ldbc"},
        seed=0,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestCacheKey:
    def test_same_spec_same_hash(self):
        assert spec().key == spec().key

    def test_key_is_hex_sha256(self):
        key = spec().key
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_param_order_does_not_matter(self):
        a = spec(params={"workload": "bfs-ta", "policy": "coolpim-sw"})
        b = spec(params={"policy": "coolpim-sw", "workload": "bfs-ta"})
        assert a.key == b.key

    @pytest.mark.parametrize(
        "change",
        [
            {"kind": "experiment"},
            {"name": "other-name"},
            {"params": {"workload": "bfs-ta"}},
            {"params": {"workload": "pagerank", "policy": "coolpim-hw",
                        "dataset": "ldbc", "extra": 1}},
            {"seed": 7},
        ],
    )
    def test_any_identity_field_change_changes_hash(self, change):
        assert spec().key != spec(**change).key

    def test_execution_knobs_do_not_change_hash(self):
        # Retuning timeouts/retries must not invalidate cached results.
        assert spec().key == spec(timeout_s=5.0, max_retries=3).key

    def test_nested_params_hash_canonically(self):
        a = spec(params={"scale": {"dataset": "ldbc", "seed": 1}})
        b = spec(params={"scale": {"seed": 1, "dataset": "ldbc"}})
        assert a.key == b.key

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            spec(params={"bad": object()}).key


class TestSerialization:
    def test_round_trip_preserves_identity(self):
        s = spec(timeout_s=2.5, max_retries=1, tags=("a", "b"))
        restored = JobSpec.from_dict(s.to_dict())
        assert restored == s
        assert restored.key == s.key

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_outcome_records_serialize(self):
        r = JobResult(key="k", name="n", payload={"x": 1}, elapsed_s=0.5)
        f = JobFailure(key="k", name="n", reason="timeout", message="m", attempts=2)
        assert r.to_dict()["payload"] == {"x": 1}
        assert f.to_dict()["reason"] == "timeout"


class TestHandlerResolution:
    def test_builtin_kinds_resolve(self):
        from repro.service.handlers import run_experiment_job, run_simulation_job

        assert resolve_handler("experiment") is run_experiment_job
        assert resolve_handler("simulation") is run_simulation_job

    def test_registry_wins_and_unregisters(self):
        marker = lambda s: {"hit": True}  # noqa: E731
        register_handler("test-kind", marker)
        try:
            assert resolve_handler("test-kind") is marker
        finally:
            unregister_handler("test-kind")
        with pytest.raises(UnknownJobKindError):
            resolve_handler("test-kind")

    def test_module_function_path_resolves(self):
        from repro.service.handlers import run_simulation_job

        handler = resolve_handler("repro.service.handlers:run_simulation_job")
        assert handler is run_simulation_job

    def test_unknown_kind_raises(self):
        with pytest.raises(UnknownJobKindError):
            resolve_handler("no-such-kind")
        with pytest.raises(UnknownJobKindError):
            resolve_handler("no.such.module:fn")
