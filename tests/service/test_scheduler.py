"""Scheduler: pool execution, caching/resume, retries, timeouts, crashes.

Test job kinds are registered at import time; pooled tests rely on the
fork start method (workers inherit the registry), so they are skipped on
platforms without fork.
"""

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.service import (
    JobJournal,
    JobScheduler,
    JobSpec,
    ResultStore,
    register_handler,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
HAS_ALARM = hasattr(signal, "SIGALRM")

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="pooled test kinds need the fork start method"
)
needs_alarm = pytest.mark.skipif(
    not HAS_ALARM, reason="per-job timeouts need SIGALRM"
)


def _ok(spec):
    return {"value": spec.params.get("v", 0), "seed": spec.seed}


def _sleep(spec):
    time.sleep(spec.params["duration_s"])
    return {"slept": spec.params["duration_s"]}


def _crash(spec):
    os._exit(3)


def _fail_until(spec):
    """Fail until ``attempts_needed`` invocations have happened.

    The attempt counter is a directory of marker files, so it survives
    process boundaries.
    """
    counter_dir = Path(spec.params["counter_dir"])
    counter_dir.mkdir(parents=True, exist_ok=True)
    calls = len(list(counter_dir.iterdir())) + 1
    (counter_dir / f"call-{calls}").touch()
    if calls < spec.params["attempts_needed"]:
        raise RuntimeError(f"induced failure on call {calls}")
    return {"succeeded_on_call": calls}


def _tele(spec):
    """Bump a telemetry counter in whatever process runs the job."""
    from repro.telemetry import get_registry

    get_registry().counter(
        "t_tele_calls_total", help="test handler invocations"
    ).inc()
    return {"value": spec.params.get("v", 0)}


for _kind, _fn in [
    ("t-ok", _ok),
    ("t-sleep", _sleep),
    ("t-crash", _crash),
    ("t-fail-until", _fail_until),
    ("t-tele", _tele),
]:
    register_handler(_kind, _fn)


def ok_specs(n, **kw):
    return [
        JobSpec(kind="t-ok", name=f"ok{i}", params={"v": i}, **kw)
        for i in range(n)
    ]


class TestSerialExecution:
    def test_runs_all_jobs_and_reports(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        report = JobScheduler(store=store, serial=True).run(ok_specs(3))
        assert report.ok and report.executed == 3 and report.cache_hits == 0
        payloads = sorted(r.payload["value"] for r in report.results.values())
        assert payloads == [0, 1, 2]

    def test_duplicate_specs_run_once(self, tmp_path):
        specs = ok_specs(1) + ok_specs(1)
        report = JobScheduler(serial=True).run(specs)
        assert len(report.results) == 1 and report.executed == 1

    def test_handler_error_becomes_jobfailure_not_exception(self, tmp_path):
        specs = [
            JobSpec(kind="t-fail-until", name="always-fails",
                    params={"counter_dir": str(tmp_path / "c"),
                            "attempts_needed": 99}),
            *ok_specs(2),
        ]
        report = JobScheduler(serial=True).run(specs)
        assert len(report.results) == 2  # sweep completed around the failure
        (failure,) = report.failures.values()
        assert failure.reason == "error"
        assert "induced failure" in failure.message
        assert failure.attempts == 1

    def test_retry_then_succeed(self, tmp_path):
        spec = JobSpec(
            kind="t-fail-until", name="flaky",
            params={"counter_dir": str(tmp_path / "c"), "attempts_needed": 3},
            max_retries=3,
        )
        journal_path = tmp_path / "journal.jsonl"
        with JobJournal(journal_path) as journal:
            report = JobScheduler(serial=True, journal=journal,
                                  backoff_s=0.001).run([spec])
        assert report.ok
        result = report.result_for(spec)
        assert result.payload["succeeded_on_call"] == 3
        assert result.attempts == 3
        counts = JobJournal.summary(journal_path)
        assert counts["retrying"] == 2 and counts["completed"] == 1

    def test_completed_events_carry_both_timing_spellings(self, tmp_path):
        # New readers use duration_s/attempt; old readers still find
        # elapsed_s/attempts — both spellings are written.
        journal_path = tmp_path / "journal.jsonl"
        with JobJournal(journal_path) as journal:
            JobScheduler(serial=True, journal=journal).run(ok_specs(1))
        (completed,) = [
            e for e in JobJournal.read(journal_path)
            if e["event"] == "completed"
        ]
        assert completed["duration_s"] == completed["elapsed_s"]
        assert completed["attempt"] == completed["attempts"] == 1
        report = JobJournal.time_report(journal_path)
        (row,) = report.values()
        assert row["runs"] == 1 and row["failed"] == 0

    def test_tracing_records_scheduler_spans(self):
        from repro.obs.tracer import tracing

        with tracing() as tr:
            report = JobScheduler(serial=True).run(ok_specs(2))
        assert report.ok
        names = [r["name"] for r in tr.records]
        assert names.count("scheduler.job") == 2
        assert names.count("scheduler.job.run") == 2
        assert "scheduler.sweep" in names

    def test_retries_exhausted_fails_with_attempt_count(self, tmp_path):
        spec = JobSpec(
            kind="t-fail-until", name="doomed",
            params={"counter_dir": str(tmp_path / "c"), "attempts_needed": 99},
            max_retries=2,
        )
        report = JobScheduler(serial=True, backoff_s=0.001).run([spec])
        failure = report.failure_for(spec)
        assert failure is not None and failure.attempts == 3

    @needs_alarm
    def test_serial_timeout(self, tmp_path):
        spec = JobSpec(kind="t-sleep", name="slow",
                       params={"duration_s": 5.0}, timeout_s=0.2)
        t0 = time.monotonic()
        report = JobScheduler(serial=True).run([spec])
        assert time.monotonic() - t0 < 4.0
        failure = report.failure_for(spec)
        assert failure is not None and failure.reason == "timeout"


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        journal_path = tmp_path / "journal.jsonl"
        specs = ok_specs(4)
        with JobJournal(journal_path) as journal:
            sched = JobScheduler(store=store, journal=journal, serial=True)
            first = sched.run(specs)
            second = sched.run(specs)
        assert first.executed == 4 and first.cache_hits == 0
        assert second.executed == 0 and second.cache_hits == 4
        assert {k: r.payload for k, r in second.results.items()} == {
            k: r.payload for k, r in first.results.items()
        }
        counts = JobJournal.summary(journal_path)
        assert counts["cache_hit"] == 4 and counts["completed"] == 4

    def test_resumed_sweep_skips_completed_jobs(self, tmp_path):
        """A killed sweep's completed jobs are served from the store."""
        store = ResultStore(root=tmp_path, fingerprint="fp")
        all_specs = ok_specs(5)
        # First invocation "died" after finishing only the first two jobs.
        JobScheduler(store=store, serial=True).run(all_specs[:2])
        journal_path = tmp_path / "journal.jsonl"
        with JobJournal(journal_path) as journal:
            report = JobScheduler(store=store, journal=journal,
                                  serial=True).run(all_specs)
        assert report.cache_hits == 2 and report.executed == 3
        assert len(report.results) == 5
        counts = JobJournal.summary(journal_path)
        assert counts["cache_hit"] == 2 and counts["submitted"] == 3

    def test_fingerprint_change_forces_rerun(self, tmp_path):
        specs = ok_specs(2)
        JobScheduler(store=ResultStore(root=tmp_path, fingerprint="fp-old"),
                     serial=True).run(specs)
        report = JobScheduler(
            store=ResultStore(root=tmp_path, fingerprint="fp-new"),
            serial=True,
        ).run(specs)
        assert report.cache_hits == 0 and report.executed == 2

    def test_use_cache_false_reexecutes_but_refreshes_store(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        specs = ok_specs(2)
        JobScheduler(store=store, serial=True).run(specs)
        report = JobScheduler(store=store, serial=True,
                              use_cache=False).run(specs)
        assert report.cache_hits == 0 and report.executed == 2
        assert store.stats().entries == 2

    def test_failures_are_not_cached(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        spec = JobSpec(kind="t-fail-until", name="doomed",
                       params={"counter_dir": str(tmp_path / "c1"),
                               "attempts_needed": 99})
        JobScheduler(store=store, serial=True).run([spec])
        assert store.stats().entries == 0


@needs_fork
class TestPooledExecution:
    def test_pool_runs_all_jobs(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        report = JobScheduler(store=store, max_workers=2).run(ok_specs(6))
        assert report.ok and report.executed == 6
        pids = {r.worker_pid for r in report.results.values()}
        assert os.getpid() not in pids  # genuinely ran out-of-process

    def test_pool_cache_hits_on_second_run(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        specs = ok_specs(4)
        JobScheduler(store=store, max_workers=2).run(specs)
        report = JobScheduler(store=store, max_workers=2).run(specs)
        assert report.cache_hits == 4 and report.executed == 0

    def test_crash_produces_jobfailure_and_sweep_completes(self, tmp_path):
        specs = [JobSpec(kind="t-crash", name="crasher")] + ok_specs(5)
        journal_path = tmp_path / "journal.jsonl"
        with JobJournal(journal_path) as journal:
            report = JobScheduler(max_workers=2, journal=journal).run(specs)
        assert len(report.results) == 5
        (failure,) = report.failures.values()
        assert failure.name == "crasher" and failure.reason == "crash"
        counts = JobJournal.summary(journal_path)
        assert counts["failed"] == 1 and counts["completed"] == 5

    @needs_alarm
    def test_timeout_produces_jobfailure_and_frees_the_pool(self, tmp_path):
        specs = [
            JobSpec(kind="t-sleep", name="hung",
                    params={"duration_s": 30.0}, timeout_s=0.3),
            *ok_specs(3),
        ]
        t0 = time.monotonic()
        report = JobScheduler(max_workers=2).run(specs)
        assert time.monotonic() - t0 < 15.0  # nobody waited the full 30 s
        failure = report.failure_for(specs[0])
        assert failure is not None and failure.reason == "timeout"
        assert len(report.results) == 3

    def test_pool_retry_then_succeed(self, tmp_path):
        spec = JobSpec(
            kind="t-fail-until", name="flaky",
            params={"counter_dir": str(tmp_path / "c"), "attempts_needed": 2},
            max_retries=2,
        )
        report = JobScheduler(max_workers=2, backoff_s=0.001).run([spec])
        assert report.ok
        assert report.result_for(spec).payload["succeeded_on_call"] == 2

    def test_worker_telemetry_deltas_merge_into_parent(self, tmp_path):
        """The worker→parent pipe: forked workers flush registry deltas
        through the job result; the parent folds them in and journals
        the flush, so /metrics covers the whole fleet."""
        from repro.telemetry.registry import TelemetryRegistry, set_registry

        previous = set_registry(TelemetryRegistry())
        journal_path = tmp_path / "journal.jsonl"
        try:
            specs = [
                JobSpec(kind="t-tele", name=f"tele{i}", params={"v": i})
                for i in range(3)
            ]
            with JobJournal(journal_path) as journal:
                report = JobScheduler(max_workers=2, journal=journal).run(specs)
            assert report.ok
            from repro.telemetry import get_registry

            reg = get_registry()
            fam = reg.counter("t_tele_calls_total")
            assert fam.value == 3.0  # one inc per worker invocation
            # Parent-side job accounting rides the same registry.
            jobs = reg.counter(
                "repro_jobs_total", labelnames=("kind", "status")
            )
            assert jobs.labels(kind="t-tele", status="completed").value == 3.0
        finally:
            set_registry(previous)
        events = [
            line for line in journal_path.read_text().splitlines()
            if '"telemetry_flush"' in line
        ]
        assert len(events) == 3

    def test_serial_jobs_skip_delta_flush_but_count(self, tmp_path):
        """Serial jobs run in-process against the parent registry — no
        delta document must ride the result (it would double-count), but
        the job counters still tick."""
        from repro.telemetry.registry import TelemetryRegistry, set_registry

        previous = set_registry(TelemetryRegistry())
        try:
            spec = JobSpec(kind="t-tele", name="tele", params={})
            report = JobScheduler(serial=True).run([spec])
            assert report.ok
            from repro.telemetry import get_registry

            reg = get_registry()
            assert reg.counter("t_tele_calls_total").value == 1.0
            jobs = reg.counter(
                "repro_jobs_total", labelnames=("kind", "status")
            )
            assert jobs.labels(kind="t-tele", status="completed").value == 1.0
        finally:
            set_registry(previous)


@needs_fork
class TestEndToEndSimulation:
    def test_real_simulation_jobs_through_the_pool(self, tmp_path):
        from repro.service import simulation_spec

        store = ResultStore(root=tmp_path)
        specs = [
            simulation_spec("kcore", dataset="ldbc-tiny",
                            policy="non-offloading"),
            simulation_spec("dc", dataset="ldbc-tiny", policy="coolpim-hw"),
        ]
        report = JobScheduler(store=store, max_workers=2).run(specs)
        assert report.ok
        for spec in specs:
            payload = report.result_for(spec).payload
            assert payload["result"]["runtime_s"] > 0
            assert payload["result"]["peak_dram_temp_c"] > 25.0
        # Resume: everything cached now.
        again = JobScheduler(store=store, max_workers=2).run(specs)
        assert again.cache_hits == 2 and again.executed == 0

    def test_seed_enters_cache_key(self, tmp_path):
        from repro.service import simulation_spec

        a = simulation_spec("kcore", dataset="ldbc-tiny", seed=0)
        b = simulation_spec("kcore", dataset="ldbc-tiny", seed=1)
        assert a.key != b.key
