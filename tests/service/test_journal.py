"""JSONL journal: append, read-back, torn-line tolerance, summaries."""

from repro.service.journal import JobJournal


class TestJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append("submitted", key="k1", name="a")
            journal.append("completed", key="k1", name="a", elapsed_s=0.5)
        events = JobJournal.read(path)
        assert [e["event"] for e in events] == ["submitted", "completed"]
        assert all("ts" in e for e in events)
        assert events[1]["elapsed_s"] == 0.5

    def test_appends_across_instances_accumulate(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("sweep_start")
        with JobJournal(path) as j:
            j.append("sweep_end")
        assert len(JobJournal.read(path)) == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert JobJournal.read(tmp_path / "nope.jsonl") == []
        assert not JobJournal.summary(tmp_path / "nope.jsonl")

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("completed", key="k")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"ts": 1.0, "event": "trunc')  # killed mid-write
        events = JobJournal.read(path)
        assert [e["event"] for e in events] == ["completed"]

    def test_summary_counts_and_since_filter(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("cache_hit")
            j.append("cache_hit")
            cut = j.append("completed")["ts"]
            j.append("cache_hit")
        counts = JobJournal.summary(path)
        assert counts["cache_hit"] == 3 and counts["completed"] == 1
        late = JobJournal.summary(path, since_ts=cut)
        assert late["cache_hit"] == 1
