"""JSONL journal: append, read-back, torn-line tolerance, summaries."""

import threading

import pytest

from repro.service.journal import JobJournal


class TestJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.append("submitted", key="k1", name="a")
            journal.append("completed", key="k1", name="a", elapsed_s=0.5)
        events = JobJournal.read(path)
        assert [e["event"] for e in events] == ["submitted", "completed"]
        assert all("ts" in e for e in events)
        assert events[1]["elapsed_s"] == 0.5

    def test_appends_across_instances_accumulate(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("sweep_start")
        with JobJournal(path) as j:
            j.append("sweep_end")
        assert len(JobJournal.read(path)) == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert JobJournal.read(tmp_path / "nope.jsonl") == []
        assert not JobJournal.summary(tmp_path / "nope.jsonl")

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("completed", key="k")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"ts": 1.0, "event": "trunc')  # killed mid-write
        events = JobJournal.read(path)
        assert [e["event"] for e in events] == ["completed"]

    def test_summary_counts_and_since_filter(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("cache_hit")
            j.append("cache_hit")
            cut = j.append("completed")["ts"]
            j.append("cache_hit")
        counts = JobJournal.summary(path)
        assert counts["cache_hit"] == 3 and counts["completed"] == 1
        late = JobJournal.summary(path, since_ts=cut)
        assert late["cache_hit"] == 1


class TestRotation:
    def test_unbounded_by_default(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            for i in range(200):
                j.append("completed", key=f"k{i}")
        assert not j.rotated_path(1).exists()
        assert len(JobJournal.read(path)) == 200

    def test_rotates_when_append_would_exceed_limit(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=300) as j:
            for i in range(20):
                j.append("completed", key=f"key-{i:04d}")
        assert j.rotated_path(1).exists()
        # The current file stays under the bound.
        assert path.stat().st_size <= 300

    def test_no_event_is_lost_across_generations(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=300, keep=10) as j:
            for i in range(30):
                j.append("completed", n=i)
        events = JobJournal.read(path, include_rotated=True)
        # Oldest → newest across rotated generations, then current.
        assert [e["n"] for e in events] == list(range(30))
        # Default read sees only the current generation.
        assert len(JobJournal.read(path)) < 30

    def test_keep_bounds_total_generations(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=120, keep=2) as j:
            for i in range(60):
                j.append("completed", n=i)
        assert j.rotated_path(1).exists()
        assert j.rotated_path(2).exists()
        assert not j.rotated_path(3).exists()  # oldest dropped

    def test_summary_counts_only_current_generation(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=200) as j:
            for i in range(20):
                j.append("completed", n=i)
        assert JobJournal.summary(path)["completed"] < 20

    def test_oversized_single_event_still_lands(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=50) as j:
            j.append("completed", blob="x" * 200)
        events = JobJournal.read(path)
        assert len(events) == 1  # bigger than the bound, but never dropped

    def test_concurrent_appends_all_recorded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, max_bytes=2000, keep=50) as j:

            def write(tag):
                for i in range(25):
                    j.append("completed", tag=tag, n=i)

            threads = [
                threading.Thread(target=write, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
        events = JobJournal.read(path, include_rotated=True)
        assert len(events) == 100

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "j.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "j.jsonl", max_bytes=10, keep=0)


class TestTimeReport:
    def test_aggregates_duration_and_attempts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as j:
            j.append("completed", name="a", duration_s=1.0, attempt=1)
            j.append("completed", name="a", duration_s=2.0, attempt=2)
            j.append("failed", name="b", duration_s=0.5, attempt=3)
            j.append("submitted", name="c")  # non-terminal: ignored
        report = JobJournal.time_report(path)
        assert report["a"] == {
            "duration_s": 3.0, "attempts": 3, "runs": 2, "failed": 0,
        }
        assert report["b"]["failed"] == 1 and report["b"]["attempts"] == 3
        assert "c" not in report

    def test_old_journal_without_new_fields_still_loads(self, tmp_path):
        # Journals written before duration_s/attempt existed carry only
        # elapsed_s/attempts; the reader must fall back to those.
        path = tmp_path / "old.jsonl"
        with JobJournal(path) as j:
            j.append("completed", name="legacy", elapsed_s=4.0, attempts=2)
            j.append("completed", name="bare")  # neither spelling
        report = JobJournal.time_report(path)
        assert report["legacy"]["duration_s"] == 4.0
        assert report["legacy"]["attempts"] == 2
        assert report["bare"] == {
            "duration_s": 0.0, "attempts": 1, "runs": 1, "failed": 0,
        }

    def test_missing_file_is_empty_report(self, tmp_path):
        assert JobJournal.time_report(tmp_path / "nope.jsonl") == {}
