"""Result store: hit/miss, fingerprint invalidation, maintenance."""

import json

from repro.service.fingerprint import code_fingerprint
from repro.service.jobs import JobSpec
from repro.service.store import ResultStore


def spec(name="job-a", seed=0) -> JobSpec:
    return JobSpec(kind="simulation", name=name, params={"n": name}, seed=seed)


class TestHitMiss:
    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp1")
        assert store.get(spec()) is None
        assert not store.contains(spec())

    def test_put_then_get_round_trips_payload(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp1")
        store.put(spec(), {"answer": 42}, elapsed_s=1.25)
        hit = store.get(spec())
        assert hit is not None
        assert hit.payload == {"answer": 42}
        assert hit.elapsed_s == 1.25
        assert hit.spec["name"] == "job-a"

    def test_lookup_by_raw_key(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp1")
        store.put(spec(), {"x": 1})
        assert store.get(spec().key).payload == {"x": 1}

    def test_different_seed_is_a_miss(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp1")
        store.put(spec(seed=0), {"x": 1})
        assert store.get(spec(seed=1)) is None

    def test_corrupt_record_is_a_miss_and_gets_dropped(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp1")
        path = store.put(spec(), {"x": 1})
        path.write_text("{not json")
        assert store.get(spec()) is None
        assert not path.exists()


class TestFingerprintInvalidation:
    def test_code_change_invalidates(self, tmp_path):
        old = ResultStore(root=tmp_path, fingerprint="fp-old")
        old.put(spec(), {"x": 1})
        new = ResultStore(root=tmp_path, fingerprint="fp-new")
        assert new.get(spec()) is None
        # The bytes are still there; only the fingerprint gate misses.
        assert new.get(spec(), check_fingerprint=False).payload == {"x": 1}

    def test_stats_counts_stale(self, tmp_path):
        ResultStore(root=tmp_path, fingerprint="fp-old").put(spec("a"), {})
        store = ResultStore(root=tmp_path, fingerprint="fp-new")
        store.put(spec("b"), {})
        stats = store.stats()
        assert stats.entries == 2
        assert stats.stale_entries == 1
        assert stats.total_bytes > 0

    def test_prune_stale_removes_only_old_fingerprints(self, tmp_path):
        ResultStore(root=tmp_path, fingerprint="fp-old").put(spec("a"), {})
        store = ResultStore(root=tmp_path, fingerprint="fp-new")
        store.put(spec("b"), {})
        assert store.prune_stale() == 1
        assert store.stats().entries == 1
        assert store.contains(spec("b"))

    def test_real_fingerprint_changes_with_source(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        fp1 = code_fingerprint(pkg)
        assert fp1 == code_fingerprint(pkg)  # stable
        (pkg / "a.py").write_text("x = 2\n")
        from repro.service.fingerprint import clear_fingerprint_cache

        clear_fingerprint_cache()
        assert code_fingerprint(pkg) != fp1

    def test_env_var_overrides_fingerprint(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned")
        assert code_fingerprint() == "pinned"


class TestMaintenance:
    def test_invalidate_and_clear(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        store.put(spec("a"), {})
        store.put(spec("b"), {})
        assert store.invalidate(spec("a")) is True
        assert store.invalidate(spec("a")) is False
        assert store.clear() == 1
        assert store.stats().entries == 0

    def test_entries_iterates_records(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        store.put(spec("a"), {"v": 1})
        store.put(spec("b"), {"v": 2})
        names = sorted(r["spec"]["name"] for r in store.entries())
        assert names == ["a", "b"]

    def test_records_are_valid_json_on_disk(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="fp")
        path = store.put(spec(), {"v": 1})
        record = json.loads(path.read_text())
        assert record["key"] == spec().key
        assert record["payload"] == {"v": 1}
