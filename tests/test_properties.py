"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.token_pool import PimTokenPool
from repro.graph.csr import CSRGraph
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.hmc.flow import HMC_2_0, HmcFlowModel, TrafficDemand
from repro.hmc.isa import (
    PimInstruction,
    PimOpcode,
    decode_operand,
    encode_operand,
    execute_semantics,
)
from repro.hmc.memory import BackingStore
from repro.hmc.packet import FLIT_BYTES, PacketType, flit_cost
from repro.sim.engine import EventEngine
from repro.sim.trace import OpBatch, merge_batches


# ---------------------------------------------------------------------------
# Event engine: executes every event exactly once, in non-decreasing time.
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), max_size=60))
def test_engine_executes_all_events_in_order(times):
    eng = EventEngine()
    fired = []
    for t in times:
        eng.schedule(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert len(fired) == len(times)
    assert fired == sorted(fired)


# ---------------------------------------------------------------------------
# CSR: from_edges preserves the edge set (modulo dedup).
# ---------------------------------------------------------------------------
@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@given(edge_lists())
def test_csr_preserves_edge_set(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    original = set(zip(src.tolist(), dst.tolist()))
    rebuilt = set()
    for v in range(n):
        for u in g.neighbors(v):
            rebuilt.add((v, int(u)))
    assert rebuilt == original
    assert g.num_edges == len(original)


@given(edge_lists())
def test_csr_expand_consistent_with_neighbors(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    frontier = np.arange(n, dtype=np.int64)
    s, d, _ = g.expand(frontier)
    assert s.size == g.num_edges
    # per-source counts match degrees
    assert np.array_equal(np.bincount(s, minlength=n), np.diff(g.indptr))


@given(edge_lists())
def test_csr_reverse_is_involution(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    rr = g.reversed().reversed()
    assert np.array_equal(rr.indptr, g.indptr)
    assert np.array_equal(rr.indices, g.indices)


# ---------------------------------------------------------------------------
# Backing store: byte-level read-your-writes.
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 8000), st.binary(min_size=1, max_size=64)),
        max_size=20,
    )
)
def test_backing_store_read_your_writes(writes):
    store = BackingStore(1 << 14)
    shadow = bytearray(1 << 14)
    for addr, data in writes:
        store.write(addr, data)
        shadow[addr : addr + len(data)] = data
    assert store.read(0, 1 << 14) == bytes(shadow)


# ---------------------------------------------------------------------------
# PIM semantics: results always fit the operand width; encode/decode
# round-trips; failed conditionals never change memory.
# ---------------------------------------------------------------------------
_INT_OPS = [
    PimOpcode.ADD_IMM, PimOpcode.ADD_IMM_RET, PimOpcode.SWAP,
    PimOpcode.BIT_WRITE, PimOpcode.AND_IMM, PimOpcode.OR_IMM,
    PimOpcode.CAS_EQUAL, PimOpcode.CAS_GREATER, PimOpcode.CAS_LESS,
]


@given(
    op=st.sampled_from(_INT_OPS),
    old=st.integers(-(2**31), 2**31 - 1),
    imm=st.integers(-(2**31), 2**31 - 1),
    cmp_=st.integers(-(2**31), 2**31 - 1),
)
def test_pim_int_results_fit_operand_width(op, old, imm, cmp_):
    inst = PimInstruction(op, address=0, immediate=imm, compare=cmp_)
    new, _flag = execute_semantics(old, inst)
    assert -(2**31) <= int(new) <= 2**31 - 1
    raw = encode_operand(new, op, 4)
    assert decode_operand(raw, op, 4) == int(new)


@given(
    old=st.integers(-(2**31), 2**31 - 1),
    imm=st.integers(-(2**31), 2**31 - 1),
)
def test_cas_greater_failure_is_identity(old, imm):
    inst = PimInstruction(PimOpcode.CAS_GREATER, 0, imm)
    new, flag = execute_semantics(old, inst)
    if not flag:
        assert new == old
    else:
        assert imm > old and new == imm


@given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 200))
def test_repeated_add_linear(start, n):
    store = BackingStore(4096)
    store.write(0, encode_operand(start, PimOpcode.ADD_IMM, 4))
    inst = PimInstruction(PimOpcode.ADD_IMM, 0, 1)
    for _ in range(n):
        store.execute_pim(inst)
    got = decode_operand(store.read(0, 4), PimOpcode.ADD_IMM, 4)
    expected = start + n
    # two's-complement wrap
    expected = (expected + 2**31) % 2**32 - 2**31
    assert got == expected


# ---------------------------------------------------------------------------
# Token pool: issued never exceeds size after drain; reduce never negative.
# ---------------------------------------------------------------------------
@given(st.lists(st.sampled_from(["request", "release", "reduce"]), max_size=80))
def test_token_pool_invariants(ops):
    pool = PimTokenPool(size=8)
    outstanding = 0
    for op in ops:
        if op == "request":
            if pool.request():
                outstanding += 1
        elif op == "release":
            if outstanding:
                pool.release()
                outstanding -= 1
        else:
            pool.reduce(2)
        assert pool.size >= 0
        assert pool.issued == outstanding
        assert pool.available >= 0


# ---------------------------------------------------------------------------
# OpBatch merging: counts are conserved exactly.
# ---------------------------------------------------------------------------
batches = st.builds(
    OpBatch,
    reads=st.integers(0, 10**6),
    writes=st.integers(0, 10**6),
    atomics=st.integers(0, 10**6),
    threads=st.integers(0, 10**4),
    divergent_warp_ratio=st.floats(0.0, 1.0),
)


@given(st.lists(batches, min_size=1, max_size=10))
def test_merge_conserves_counts(bs):
    m = merge_batches(bs)
    assert m.reads == sum(b.reads for b in bs)
    assert m.atomics == sum(b.atomics for b in bs)
    assert 0.0 <= m.divergent_warp_ratio <= 1.0


# ---------------------------------------------------------------------------
# Flow model: service time is monotone in demand and consistent with the
# FLIT arithmetic of Table I.
# ---------------------------------------------------------------------------
demands = st.builds(
    TrafficDemand,
    reads=st.integers(0, 10**5),
    writes=st.integers(0, 10**5),
    host_atomics=st.integers(0, 10**5),
    pim_ops=st.integers(0, 10**5),
    pim_ops_ret=st.integers(0, 10**5),
)


@given(demands, demands)
def test_flow_service_time_superadditive_components(d1, d2):
    flow = HmcFlowModel(HMC_2_0)
    combined = TrafficDemand(
        reads=d1.reads + d2.reads,
        writes=d1.writes + d2.writes,
        host_atomics=d1.host_atomics + d2.host_atomics,
        pim_ops=d1.pim_ops + d2.pim_ops,
        pim_ops_ret=d1.pim_ops_ret + d2.pim_ops_ret,
    )
    t1 = flow.service_time_ns(d1)
    t2 = flow.service_time_ns(d2)
    tc = flow.service_time_ns(combined)
    # max-of-bottlenecks: combined at least each part, at most the sum.
    assert tc >= max(t1, t2) - 1e-9
    assert tc <= t1 + t2 + 1e-9


@given(demands)
def test_flow_flits_match_manual_table1_sum(d):
    req = (
        (d.reads + d.host_atomics) * flit_cost(PacketType.READ64)[0]
        + (d.writes + d.host_atomics) * flit_cost(PacketType.WRITE64)[0]
        + d.pim_ops * flit_cost(PacketType.PIM)[0]
        + d.pim_ops_ret * flit_cost(PacketType.PIM_RET)[0]
    )
    assert d.request_flits() == req
    assert d.link_bytes() == (d.request_flits() + d.response_flits()) * FLIT_BYTES


# ---------------------------------------------------------------------------
# Phase policy: monotone phase/derating in temperature.
# ---------------------------------------------------------------------------
@given(st.floats(0.0, 120.0), st.floats(0.0, 120.0))
def test_phase_monotone_in_temperature(t1, t2):
    policy = TemperaturePhasePolicy()
    lo, hi = min(t1, t2), max(t1, t2)
    assert policy.phase(lo) <= policy.phase(hi)
    assert policy.bandwidth_scale(lo) >= policy.bandwidth_scale(hi)


@given(st.floats(0.0, 104.99))
def test_derating_times_energy_never_cools_below_nominal(temp):
    """Hot-phase served-power invariant (see test_dram_timing)."""
    policy = TemperaturePhasePolicy()
    phase = policy.phase(temp)
    assert policy.frequency_scale(phase) * policy.dram_energy_scale(phase) >= 1.0
