"""Fault injection: deterministic streams, engine agreement, clean state.

Three contracts are locked here. (1) Presets compile deterministically:
the same ``(name, seed)`` always yields the same event stream, in any
process. (2) Injected runs are engine-equivalent: the macro fast path
reproduces the stepped oracle bit-for-bit across injection boundaries —
events are commit boundaries, sensor-fault windows run on the scalar
path. (3) The driver leaves shared models clean: a run after an injected
run on the same system sees nominal knobs.
"""

import pytest

from repro.core.policies import make_policy
from repro.scenarios import (
    SCENARIO_NAMES,
    Scenario,
    ScenarioDriver,
    ScenarioEvent,
    is_scenario_name,
    make_scenario,
)
from repro.scenarios.events import EVENT_KINDS
from repro.gpu.simulator import SystemSimulator
from repro.hmc.config import HMC_2_0
from repro.hmc.flow import HmcFlowModel
from repro.thermal.cooling import COMMODITY_SERVER, LOW_END_ACTIVE
from repro.thermal.model import HmcThermalModel
from repro.thermal.sensor import ThermalSensor

from tests.gpu.test_macro_equivalence import (
    EXACT_FIELDS,
    assert_equivalent,
    hot_launch,
)


def build_sim(engine, scenario=None, cooling=COMMODITY_SERVER):
    return SystemSimulator(
        flow=HmcFlowModel(HMC_2_0),
        thermal=HmcThermalModel(HMC_2_0, cooling=cooling),
        sensor=ThermalSensor(),
        engine=engine,
        scenario=scenario,
    )


def run_both(launch, policy_name, scenario, cooling=COMMODITY_SERVER):
    out = {}
    for engine in ("stepped", "macro"):
        sim = build_sim(engine, scenario=scenario, cooling=cooling)
        result = sim.run(launch, make_policy(policy_name))
        out[engine] = (result, sim.stats.snapshot(), sim)
    return out


class TestPresets:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_compile_is_deterministic(self, name):
        a = make_scenario(name, seed=3)
        b = make_scenario(name, seed=3)
        assert a.events == b.events
        assert a.name == name and a.seed == 3

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_seeds_vary_the_stream(self, name):
        assert make_scenario(name, seed=0).events != make_scenario(
            name, seed=1
        ).events

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_events_sorted_and_typed(self, name):
        scenario = make_scenario(name)
        assert scenario.events  # never empty
        times = [e.t_s for e in scenario.events]
        assert times == sorted(times)
        for event in scenario.events:
            assert event.kind in EVENT_KINDS
            assert event.t_s >= 0.0

    def test_unknown_name_and_bad_seed(self):
        with pytest.raises(KeyError):
            make_scenario("meteor-strike")
        with pytest.raises(ValueError):
            make_scenario("heatwave", seed=-1)
        assert is_scenario_name("chaos")
        assert not is_scenario_name("meteor-strike")

    def test_to_dict_round_trips_the_stream(self):
        scenario = make_scenario("degraded-cooling", seed=5)
        d = scenario.to_dict()
        assert d["name"] == "degraded-cooling"
        assert d["seed"] == 5
        assert len(d["events"]) == len(scenario.events)


class TestEventValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ScenarioEvent(0.0, "asteroid")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ScenarioEvent(-1.0, "ambient-offset", 5.0)

    def test_scenario_requires_sorted_events(self):
        events = (
            ScenarioEvent(2.0, "ambient-offset", 1.0),
            ScenarioEvent(1.0, "ambient-offset", 0.0),
        )
        with pytest.raises(ValueError):
            Scenario(name="x", seed=0, events=events)


class TestEngineEquivalence:
    """The tentpole contract: injected runs agree macro vs stepped."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_engines_agree_under_injection(self, name):
        scenario = make_scenario(name, seed=1)
        assert_equivalent(
            run_both(hot_launch(n_epochs=6), "coolpim-hw", scenario)
        )

    @pytest.mark.parametrize(
        "policy", ["naive-offloading", "coolpim-sw", "coolpim-hw"]
    )
    def test_hot_injected_runs_agree(self, policy):
        """Degraded cooling on a weak sink: injections land while the
        control loop is riding the warning band."""
        scenario = make_scenario("degraded-cooling", seed=2)
        out = run_both(
            hot_launch(), policy, scenario, cooling=LOW_END_ACTIVE
        )
        assert out["stepped"][0].thermal_warnings > 0
        assert_equivalent(out)

    def test_sensor_faults_agree_on_scalar_path(self):
        """Noise + dropout windows force the oracle path: both engines
        must draw identical variates at identical sample instants."""
        for name in ("sensor-noise", "sensor-dropout"):
            scenario = make_scenario(name, seed=4)
            assert_equivalent(
                run_both(hot_launch(), "coolpim-sw", scenario,
                         cooling=LOW_END_ACTIVE)
            )


class TestReplayDeterminism:
    def test_same_scenario_same_result(self):
        scenario = make_scenario("chaos", seed=9)
        results = []
        for _ in range(2):
            sim = build_sim("macro", scenario=scenario,
                            cooling=LOW_END_ACTIVE)
            results.append(sim.run(hot_launch(n_epochs=5),
                                   make_policy("coolpim-hw")))
        first, second = results
        for field in EXACT_FIELDS:
            assert getattr(first, field) == getattr(second, field), field
        assert first.peak_dram_temp_c == second.peak_dram_temp_c
        assert first.timeline == second.timeline

    def test_injection_changes_the_run(self):
        """A cooling-degradation stream must actually perturb the run
        (otherwise the plumbing silently no-ops)."""
        launch = hot_launch()
        clean = build_sim("macro", cooling=LOW_END_ACTIVE)
        base = clean.run(launch, make_policy("coolpim-hw"))
        injected_sim = build_sim(
            "macro",
            scenario=make_scenario("degraded-cooling", seed=0),
            cooling=LOW_END_ACTIVE,
        )
        injected = injected_sim.run(launch, make_policy("coolpim-hw"))
        # The degradation onset may postdate the run's thermal peak, so
        # compare the post-onset trajectory: the final samples must run
        # hotter than the clean run's.
        assert injected.timeline != base.timeline
        assert injected.timeline[-1][1] > base.timeline[-1][1]


class TestDriverState:
    def test_knobs_restored_after_run(self):
        scenario = make_scenario("chaos", seed=0)
        sim = build_sim("stepped", scenario=scenario)
        sim.run(hot_launch(n_epochs=3), make_policy("coolpim-hw"))
        assert sim.thermal.effective_ambient_c == sim.thermal.ambient_c
        assert sim.flow.vault_capacity_scale == 1.0
        assert sim.sensor.perturb is None

    def test_clean_run_after_injected_run_is_unaffected(self):
        """Shared-model hygiene: same simulator, scenario cleared."""
        launch = hot_launch(n_epochs=3)
        reference = build_sim("stepped")
        base = reference.run(launch, make_policy("coolpim-hw"))
        sim = build_sim("stepped", scenario=make_scenario("chaos", seed=1))
        sim.run(launch, make_policy("coolpim-hw"))
        sim.scenario = None
        after = sim.run(launch, make_policy("coolpim-hw"))
        for field in EXACT_FIELDS:
            assert getattr(after, field) == getattr(base, field), field

    def test_driver_counts_injections(self):
        scenario = make_scenario("degraded-cooling", seed=0)
        sim = build_sim("stepped", scenario=scenario)
        driver = ScenarioDriver(scenario, sim)
        driver.begin()
        driver.apply_due(scenario.events[-1].t_s)
        assert driver.injected == len(scenario.events)
        assert driver.next_event_s() == float("inf")
        driver.finish()
        assert sim.sensor.perturb is None

    def test_apply_due_is_incremental(self):
        scenario = make_scenario("heatwave", seed=0)
        sim = build_sim("stepped", scenario=scenario)
        driver = ScenarioDriver(scenario, sim)
        driver.begin()
        first_t = scenario.events[0].t_s
        driver.apply_due(first_t)
        assert driver.injected >= 1
        assert driver.next_event_s() > first_t
        assert sim.thermal.effective_ambient_c != sim.thermal.ambient_c

    def test_phase_mix_scales_batches(self):
        from repro.sim.trace import OpBatch

        scenario = Scenario(
            name="x", seed=0,
            events=(ScenarioEvent(0.0, "phase-mix", 1.5, 0.5),),
        )
        sim = build_sim("stepped", scenario=scenario)
        driver = ScenarioDriver(scenario, sim)
        driver.begin()
        driver.apply_due(0.0)
        batch = OpBatch(reads=100, writes=50, atomics=10,
                        compute_cycles=1000, threads=64)
        out = driver.transform_batch(batch)
        assert out.reads == 150 and out.writes == 75 and out.atomics == 15
        assert out.compute_cycles == 500
        assert out.threads == batch.threads
