"""Dataset registry."""

import pytest

from repro.graph.datasets import clear_cache, get_dataset, list_datasets


class TestDatasets:
    def test_listing_contains_evaluation_graph(self):
        names = list_datasets()
        assert "ldbc" in names and "ldbc-tiny" in names

    def test_instances_are_cached(self):
        clear_cache()
        a = get_dataset("ldbc-tiny")
        b = get_dataset("ldbc-tiny")
        assert a is b

    def test_clear_cache_rebuilds(self):
        a = get_dataset("ldbc-tiny")
        clear_cache()
        b = get_dataset("ldbc-tiny")
        assert a is not b
        assert a.num_edges == b.num_edges  # deterministic regeneration

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError) as exc:
            get_dataset("nope")
        assert "ldbc" in str(exc.value)

    def test_tiny_graphs_are_weighted(self):
        assert get_dataset("ldbc-tiny").is_weighted
        assert get_dataset("grid-8x8").is_weighted
