"""Synthetic graph generators: determinism, shape, degree skew."""

import numpy as np
import pytest

from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    ldbc_like_graph,
    rmat_graph,
    star_graph,
)


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        g = rmat_graph(8, 4, seed=1)
        assert g.num_vertices == 256

    def test_deterministic_for_seed(self):
        a = rmat_graph(7, 4, seed=42)
        b = rmat_graph(7, 4, seed=42)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_different_seeds_differ(self):
        a = rmat_graph(7, 4, seed=1)
        b = rmat_graph(7, 4, seed=2)
        assert not (
            a.num_edges == b.num_edges and np.array_equal(a.indices, b.indices)
        )

    def test_no_self_loops(self):
        g = rmat_graph(7, 8, seed=3)
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
        assert not np.any(src == g.indices)

    def test_degree_skew(self):
        # Power-law-ish: max degree far above mean.
        g = rmat_graph(10, 8, seed=5)
        mean, peak = g.degree_stats()
        assert peak > 5 * mean

    def test_weighted_range(self):
        g = rmat_graph(6, 4, seed=1, weighted=True)
        assert g.weights.min() >= 1.0 and g.weights.max() < 64.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.5, b=0.3, c=0.3)


class TestLdbcLike:
    def test_is_symmetric(self):
        g = ldbc_like_graph(scale=7, edge_factor=4, seed=1)
        # every edge has its reverse
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
        fwd = set(zip(src.tolist(), g.indices.tolist()))
        assert all((d, s) in fwd for s, d in fwd)

    def test_weighted_by_default(self):
        g = ldbc_like_graph(scale=6, edge_factor=4)
        assert g.is_weighted


class TestErdosRenyi:
    def test_average_degree_close_to_target(self):
        g = erdos_renyi_graph(2000, 10.0, seed=1)
        mean, _ = g.degree_stats()
        assert 8.0 < mean < 10.5  # dedup/self-loop removal trims a little

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 4.0)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, -1.0)


class TestGrid:
    def test_interior_vertex_has_four_neighbors(self):
        g = grid_graph(5, 5)
        assert g.out_degree(12) == 4  # centre of a 5x5 grid

    def test_corner_has_two(self):
        g = grid_graph(3, 3)
        assert g.out_degree(0) == 2

    def test_edge_count(self):
        # 4-neighbour grid: 2*rows*cols*2 - 2*(rows+cols) directed edges.
        rows, cols = 4, 6
        g = grid_graph(rows, cols)
        expected = 2 * (rows * (cols - 1) + cols * (rows - 1))
        assert g.num_edges == expected

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestStar:
    def test_hub_degree(self):
        g = star_graph(10)
        assert g.out_degree(0) == 10
        assert g.out_degree(5) == 1

    def test_negative_leaves(self):
        with pytest.raises(ValueError):
            star_graph(-1)


class TestRoadLike:
    def test_long_diameter_small_frontiers(self):
        from repro.graph.generators import road_like_graph
        import numpy as np

        g = road_like_graph(40, 40, extra_edge_fraction=0.0, seed=1)
        from repro.workloads.bfs import bfs_depths

        depth = bfs_depths(g, 0)
        assert depth.max() == 78  # corner-to-corner manhattan distance

    def test_shortcuts_shrink_diameter(self):
        from repro.graph.generators import road_like_graph
        from repro.workloads.bfs import bfs_depths

        pure = road_like_graph(40, 40, extra_edge_fraction=0.0, seed=1)
        wired = road_like_graph(40, 40, extra_edge_fraction=0.05, seed=1)
        assert bfs_depths(wired, 0).max() < bfs_depths(pure, 0).max()

    def test_near_constant_degree(self):
        from repro.graph.generators import road_like_graph

        g = road_like_graph(30, 30, extra_edge_fraction=0.001, seed=2)
        mean, peak = g.degree_stats()
        assert peak <= 8  # grid degree 4 plus a few shortcuts

    def test_weighted_by_default(self):
        from repro.graph.generators import road_like_graph

        assert road_like_graph(10, 10).is_weighted

    def test_fraction_validation(self):
        from repro.graph.generators import road_like_graph
        import pytest

        with pytest.raises(ValueError):
            road_like_graph(10, 10, extra_edge_fraction=1.5)
