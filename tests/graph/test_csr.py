"""CSR graph container: construction, validation, expansion."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph


def small_graph():
    # 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
    return CSRGraph.from_edges(
        3, np.array([0, 0, 1, 2]), np.array([1, 2, 2, 0])
    )


class TestConstruction:
    def test_basic_counts(self):
        g = small_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 4

    def test_neighbors(self):
        g = small_graph()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == [0]

    def test_out_degree(self):
        g = small_graph()
        assert g.out_degree(0) == 2
        assert list(g.out_degree()) == [2, 1, 1]

    def test_dedup_removes_duplicate_edges(self):
        g = CSRGraph.from_edges(2, np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert g.num_edges == 1

    def test_dedup_disabled_keeps_multi_edges(self):
        g = CSRGraph.from_edges(
            2, np.array([0, 0]), np.array([1, 1]), dedup=False
        )
        assert g.num_edges == 2

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([0]), np.array([5]))

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_arrays_are_immutable(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.indices[0] = 0

    def test_empty_graph(self):
        g = CSRGraph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_weights_shape_checked(self):
        with pytest.raises(ValueError):
            CSRGraph(
                np.array([0, 1]), np.array([0]), weights=np.array([1.0, 2.0])
            )


class TestWeights:
    def test_weights_follow_edge_sort(self):
        g = CSRGraph.from_edges(
            2,
            np.array([1, 0]),
            np.array([0, 1]),
            weights=np.array([9.0, 3.0]),
        )
        assert g.edge_weights(0)[0] == 3.0
        assert g.edge_weights(1)[0] == 9.0

    def test_edge_weights_requires_weighted(self):
        with pytest.raises(ValueError):
            small_graph().edge_weights(0)


class TestTransforms:
    def test_reversed_flips_edges(self):
        g = small_graph()
        r = g.reversed()
        assert list(r.neighbors(2)) == [0, 1]
        assert r.num_edges == g.num_edges

    def test_to_undirected_symmetrizes(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        u = g.to_undirected()
        assert list(u.neighbors(0)) == [1]
        assert list(u.neighbors(1)) == [0]

    def test_degree_stats(self):
        mean, peak = small_graph().degree_stats()
        assert mean == pytest.approx(4 / 3)
        assert peak == 2


class TestExpand:
    def test_expand_matches_neighbors(self):
        g = small_graph()
        src, dst, w = g.expand(np.array([0, 2]))
        assert list(src) == [0, 0, 2]
        assert list(dst) == [1, 2, 0]
        assert w is None

    def test_expand_with_weights(self):
        g = CSRGraph.from_edges(
            2, np.array([0, 0]), np.array([0, 1]),
            weights=np.array([1.5, 2.5]), dedup=False,
        )
        src, dst, w = g.expand(np.array([0]), with_weights=True)
        assert list(w) == [1.5, 2.5]

    def test_expand_empty_frontier(self):
        src, dst, w = small_graph().expand(np.array([], dtype=np.int64))
        assert src.size == 0 and dst.size == 0

    def test_expand_isolated_vertex(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        src, dst, _ = g.expand(np.array([2]))
        assert dst.size == 0

    def test_expand_weights_on_unweighted_raises(self):
        with pytest.raises(ValueError):
            small_graph().expand(np.array([0]), with_weights=True)

    def test_expand_equals_per_vertex_concat(self):
        rng = np.random.default_rng(0)
        from repro.graph.generators import rmat_graph

        g = rmat_graph(6, 4, seed=3)
        frontier = rng.choice(g.num_vertices, size=10, replace=False)
        src, dst, _ = g.expand(frontier)
        expected = np.concatenate([g.neighbors(int(v)) for v in frontier])
        assert np.array_equal(dst, expected)
