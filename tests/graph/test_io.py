"""Graph I/O round trips and parsing."""

import io

import numpy as np
import pytest

from repro.graph.generators import grid_graph, ldbc_like_graph
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


def graphs_equal(a, b):
    return (
        np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and (
            (a.weights is None and b.weights is None)
            or np.allclose(a.weights, b.weights)
        )
    )


class TestEdgeList:
    def test_parse_unweighted(self):
        g = load_edge_list(io.StringIO("0 1\n1 2\n2 0\n"))
        assert g.num_vertices == 3 and g.num_edges == 3
        assert not g.is_weighted

    def test_parse_weighted_autodetect(self):
        g = load_edge_list(io.StringIO("0 1 2.5\n1 0 4\n"))
        assert g.is_weighted
        assert g.edge_weights(0)[0] == 2.5

    def test_comments_and_blanks_skipped(self):
        text = "# header\n% konect style\n\n0 1\n"
        assert load_edge_list(io.StringIO(text)).num_edges == 1

    def test_sparse_ids_compacted(self):
        g = load_edge_list(io.StringIO("100 5000\n5000 99\n"))
        assert g.num_vertices == 3

    def test_forced_unweighted_ignores_column(self):
        g = load_edge_list(io.StringIO("0 1 9.9\n"), weighted=False)
        assert not g.is_weighted

    def test_missing_weight_column(self):
        with pytest.raises(ValueError):
            load_edge_list(io.StringIO("0 1 1.0\n1 2\n"), weighted=True)

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            load_edge_list(io.StringIO("7\n"))

    def test_negative_id(self):
        with pytest.raises(ValueError):
            load_edge_list(io.StringIO("-1 2\n"))

    def test_empty_input(self):
        with pytest.raises(ValueError):
            load_edge_list(io.StringIO("# nothing\n"))

    def test_text_roundtrip(self):
        # Grid graphs have no isolated vertices, which an edge list
        # cannot represent (ids are compacted on load).
        g = grid_graph(6, 6, weighted=True, seed=1)
        buf = io.StringIO()
        save_edge_list(buf, g)
        buf.seek(0)
        g2 = load_edge_list(buf)
        assert graphs_equal(g, g2)

    def test_file_roundtrip(self, tmp_path):
        g = grid_graph(4, 7, weighted=True, seed=2)
        path = tmp_path / "graph.txt"
        save_edge_list(path, g)
        assert graphs_equal(g, load_edge_list(path))

    def test_isolated_vertices_compact_away(self):
        # Documented limitation of the text format.
        from repro.graph.csr import CSRGraph
        import numpy as np

        g = CSRGraph.from_edges(5, np.array([0]), np.array([4]))
        buf = io.StringIO()
        save_edge_list(buf, g)
        buf.seek(0)
        g2 = load_edge_list(buf)
        assert g2.num_vertices == 2


class TestNpz:
    def test_roundtrip_weighted(self, tmp_path):
        g = ldbc_like_graph(scale=6, edge_factor=4, seed=4)
        path = tmp_path / "g.npz"
        save_npz(path, g)
        assert graphs_equal(g, load_npz(path))

    def test_roundtrip_unweighted(self, tmp_path):
        g = ldbc_like_graph(scale=5, edge_factor=4, seed=4, weighted=False)
        path = tmp_path / "g.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert graphs_equal(g, g2)
        assert not g2.is_weighted
