"""Extension experiments: energy accounting and overheat management."""

import pytest

from repro.core import CoolPimSystem
from repro.experiments import energy, management
from repro.experiments.common import RunScale
from repro.graph import get_dataset
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.workloads.dc import DegreeCentrality


class TestConservativePolicy:
    def test_no_derating_below_kill_switch(self):
        policy = TemperaturePhasePolicy(conservative_shutdown=True)
        assert policy.phase(94.9) is TemperaturePhase.NORMAL
        assert policy.frequency_scale(policy.phase(90.0)) == 1.0

    def test_shutdown_at_95(self):
        policy = TemperaturePhasePolicy(conservative_shutdown=True)
        assert policy.phase(95.0) is TemperaturePhase.SHUTDOWN

    def test_default_policy_unaffected(self):
        policy = TemperaturePhasePolicy()
        assert policy.phase(95.0) is TemperaturePhase.CRITICAL


class TestEnergyAccounting:
    @pytest.fixture(scope="class")
    def results(self):
        system = CoolPimSystem()
        graph = get_dataset("ldbc-small")
        w = DegreeCentrality()
        w.repeats = 40
        return system.run_all_policies(w, graph)

    def test_energy_positive_and_consistent(self, results):
        for res in results.values():
            assert res.package_energy_j > 0
            assert res.total_energy_j >= res.package_energy_j
            assert res.avg_power_w > 0

    def test_fan_energy_scales_with_runtime(self, results):
        base = results["non-offloading"]
        fan_w = base.fan_energy_j / base.runtime_s
        assert fan_w == pytest.approx(3.56, abs=0.5)  # commodity sink fan

    def test_ideal_thermal_skips_fan(self, results):
        assert results["ideal-thermal"].fan_energy_j == 0.0

    def test_power_in_plausible_range(self, results):
        # Package + fan for a busy cube: tens of watts.
        for res in results.values():
            assert 5.0 < res.avg_power_w < 80.0

    def test_energy_ratio_self_is_one(self, results):
        base = results["non-offloading"]
        assert base.energy_ratio(base) == pytest.approx(1.0)


class TestManagementComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return management.run("dc", scale=RunScale.quick())

    def test_all_rows_present(self, result):
        assert "baseline (no offloading)" in result.rows
        assert "naive + conservative shutdown" in result.rows
        assert "CoolPIM (SW) + dynamic derating" in result.rows

    def test_baseline_speedup_is_one(self, result):
        assert result.rows["baseline (no offloading)"][3] == 1.0

    def test_formatting(self, result):
        out = management.format_result(result, "dc")
        assert "Shutdowns" in out


class TestEnergyExperiment:
    def test_runs_at_quick_scale(self):
        result = energy.run(RunScale.quick())
        assert set(result.energy_ratio) == set(result.matrix.workloads)
        for ratios in result.energy_ratio.values():
            for v in ratios.values():
                assert v > 0

    def test_formatting(self):
        out = energy.format_result(energy.run(RunScale.quick()))
        assert "Energy" in out


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import sensitivity

        return sensitivity.run(RunScale.quick(), datasets=("ldbc", "road"))

    def test_all_cells_present(self, result):
        assert len(result.cells) == 4

    def test_road_cooler_than_social_under_naive(self, result):
        for wl in ("bfs-dwc", "sssp-dwc"):
            assert result.naive_peak("road", wl) <= result.naive_peak("ldbc", wl) + 1.0

    def test_formatting(self):
        from repro.experiments import sensitivity

        out = sensitivity.format_result(
            sensitivity.run(RunScale.quick(), datasets=("ldbc",))
        )
        assert "Dataset sensitivity" in out


class TestHotspot:
    def test_weights_construction(self):
        from repro.experiments.hotspot import vault_weights_for_skew
        import numpy as np

        w = vault_weights_for_skew(32, 0.5)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1]
        with pytest.raises(ValueError):
            vault_weights_for_skew(32, 1.0)

    def test_skew_monotonically_heats(self):
        from repro.experiments import hotspot

        sweep = hotspot.run(skews=(0.0, 0.1, 0.2))
        assert sweep.peak_temps_c == sorted(sweep.peak_temps_c)
        assert sweep.interleaving_headroom_c > 5.0

    def test_uniform_matches_fig4_anchor(self):
        from repro.experiments import hotspot

        sweep = hotspot.run(skews=(0.0,))
        assert sweep.peak_temps_c[0] == pytest.approx(81.0, abs=0.5)

    def test_formatting(self):
        from repro.experiments import hotspot

        out = hotspot.format_result(hotspot.run(skews=(0.0, 0.1)))
        assert "hotspot" in out.lower() or "skew" in out.lower()


class TestCoolingSweep:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import cooling_sweep

        return cooling_sweep.run("dc", scale=RunScale.quick())

    def test_all_sinks_present(self, result):
        assert set(result.cells) == {"low-end", "commodity", "high-end"}

    def test_offload_fraction_grows_with_cooling(self, result):
        # Stronger sink → more thermal headroom → more offloading.
        assert (result.coolpim_fraction("high-end")
                >= result.coolpim_fraction("low-end") - 0.02)

    def test_formatting(self):
        from repro.experiments import cooling_sweep

        out = cooling_sweep.format_result(
            cooling_sweep.run("dc", scale=RunScale.quick()), "dc"
        )
        assert "Cooling-budget sweep" in out


class TestFig8:
    def test_constants_match_paper(self):
        from repro.experiments import fig8_delays

        result = fig8_delays.run("dc", scale=RunScale.quick())
        assert result.sw.throttle_s == pytest.approx(0.1e-3)
        assert result.hw.throttle_s == pytest.approx(0.1e-6)
        assert result.sw.thermal_s == result.hw.thermal_s == pytest.approx(1e-3)

    def test_formatting_handles_cool_runs(self):
        from repro.experiments import fig8_delays

        result = fig8_delays.run("kcore", scale=RunScale.quick())
        out = fig8_delays.format_result(result)
        assert "Tthrottle" in out
