"""Experiment utilities: table formatting and run scaling."""

import pytest

from repro.experiments.common import RunScale, format_table, scaled_workload


class TestFormatTable:
    def test_aligns_columns(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yyyy", 22.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["h"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_large_numbers_not_scientific(self):
        out = format_table(["x"], [[12345.6]])
        assert "12346" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestRunScale:
    def test_full_uses_evaluation_graph(self):
        scale = RunScale.full()
        assert scale.dataset == "ldbc"
        assert scale.workload_scale == 1.0

    def test_quick_shrinks(self):
        scale = RunScale.quick()
        assert scale.dataset == "ldbc-small"
        assert scale.workload_scale < 1.0

    def test_hashable_for_cache_keys(self):
        assert hash(RunScale.full()) == hash(RunScale.full())


class TestScaledWorkload:
    def test_full_scale_keeps_defaults(self):
        w = scaled_workload("bfs-dwc", RunScale.full())
        from repro.workloads.bfs import BfsDwc

        assert w.num_sources == BfsDwc.num_sources

    def test_quick_scale_shrinks_sources(self):
        w = scaled_workload("bfs-dwc", RunScale.quick())
        from repro.workloads.bfs import BfsDwc

        assert w.num_sources < BfsDwc.num_sources
        assert w.num_sources >= 1

    def test_scales_iterations_and_repeats(self):
        pr = scaled_workload("pagerank", RunScale.quick())
        dc = scaled_workload("dc", RunScale.quick())
        from repro.workloads.dc import DegreeCentrality
        from repro.workloads.pagerank import PageRank

        assert pr.iterations < PageRank.iterations
        assert dc.repeats < DegreeCentrality.repeats

    def test_seed_forwarded(self):
        assert scaled_workload("dc", RunScale.quick(), seed=9).seed == 9
