"""Figs. 1–5: thermal experiments reproduce the paper's shapes."""

import pytest

from repro.experiments import (
    fig1_prototype,
    fig2_validation,
    fig3_heatmap,
    fig4_bandwidth,
    fig5_pim_rate,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def points(self):
        return fig1_prototype.run()

    def test_passive_busy_shuts_down(self, points):
        p = next(x for x in points if x.cooling == "passive" and x.state == "busy")
        assert p.shutdown

    def test_active_sinks_do_not_shut_down(self, points):
        for p in points:
            if p.cooling != "passive":
                assert not p.shutdown

    def test_busy_hotter_than_idle(self, points):
        by = {(p.cooling, p.state): p.surface_c for p in points}
        for cooling in ("high-end", "low-end", "passive"):
            assert by[(cooling, "busy")] > by[(cooling, "idle")]

    def test_surface_within_7c_of_measurement(self, points):
        for p in points:
            assert abs(p.surface_c - p.paper_surface_c) < 7.0, p

    def test_formatting(self, points):
        out = fig1_prototype.format_result(points)
        assert "SHUTDOWN" in out


class TestFig2:
    def test_model_error_single_digit(self):
        points = fig2_validation.run()
        assert len(points) == 2
        for p in points:
            assert abs(p.error_c) < 10.0  # "reasonable error"

    def test_die_hotter_than_surface(self):
        for p in fig2_validation.run():
            assert p.die_modeled_c > 0
            assert p.die_estimated_c > p.surface_measured_c


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_heatmap.run(sub=2)

    def test_logic_layer_hottest(self, result):
        peaks = {name: peak for name, peak, _mean in result.layer_peaks}
        assert peaks["logic"] == max(peaks.values())

    def test_dram_gradient_bottom_to_top(self, result):
        peaks = {name: peak for name, peak, _mean in result.layer_peaks}
        assert peaks["dram0"] > peaks["dram7"]

    def test_hotspot_at_vault_center(self):
        result = fig3_heatmap.run(sub=3)
        assert result.hotspot_is_vault_center

    def test_ascii_rendering(self, result):
        art = fig3_heatmap.ascii_heatmap(result.layer_maps["logic"])
        assert "C" in art


class TestFig4:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig4_bandwidth.run()

    def test_commodity_anchors(self, sweep):
        curve = sweep.curves["commodity"]
        assert curve[0] == pytest.approx(33.0, abs=0.5)    # idle
        assert curve[-1] == pytest.approx(81.0, abs=0.5)   # 320 GB/s

    def test_curves_monotone(self, sweep):
        for curve in sweep.curves.values():
            assert curve == sorted(curve)

    def test_passive_and_lowend_cross_ceiling(self, sweep):
        assert sweep.ceiling_crossing_gbs["passive"] is not None
        assert sweep.ceiling_crossing_gbs["low-end"] is not None
        assert sweep.ceiling_crossing_gbs["commodity"] is None
        assert sweep.ceiling_crossing_gbs["high-end"] is None


class TestFig5:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig5_pim_rate.run()

    def test_max_rate_is_65(self, sweep):
        assert sweep.max_rate_limit == pytest.approx(6.5, abs=0.15)

    def test_85c_crossing_near_threshold(self, sweep):
        # Paper quotes 1.3 op/ns; our exactly-linear curve crosses at ~1.1
        # (see DESIGN.md fidelity deltas).
        assert 0.9 < sweep.normal_rate_limit < 1.5

    def test_positive_correlation(self, sweep):
        assert sweep.temps_c == sorted(sweep.temps_c)

    def test_phase_labels(self):
        assert fig5_pim_rate.phase_label(70) == "0C-85C"
        assert fig5_pim_rate.phase_label(90) == "85C-95C"
        assert fig5_pim_rate.phase_label(100) == "95C-105C"
        assert fig5_pim_rate.phase_label(110) == "Too Hot"
