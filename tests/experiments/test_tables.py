"""Tables I–IV regeneration."""

from repro.experiments import tables


class TestTableI:
    def test_rows_match_paper(self):
        rows = {r[0]: (r[1], r[2]) for r in tables.table1_rows()}
        assert rows["64-byte READ"] == ("1 FLITs", "5 FLITs")
        assert rows["64-byte WRITE"] == ("5 FLITs", "1 FLITs")
        assert rows["PIM inst. without return"] == ("2 FLITs", "1 FLITs")
        assert rows["PIM inst. with return"] == ("2 FLITs", "2 FLITs")

    def test_renders(self):
        out = tables.table1()
        assert "FLIT size: 128-bit" in out


class TestTableII:
    def test_four_cooling_rows(self):
        rows = tables.table2_rows()
        assert len(rows) == 4
        by_name = {r[0]: r for r in rows}
        assert by_name["passive"][1] == 4.0
        assert by_name["passive"][2] == "0"
        assert by_name["commodity"][1] == 0.5

    def test_fan_power_column_close_to_paper(self):
        by_name = {r[0]: r[2] for r in tables.table2_rows()}
        assert by_name["low-end"] == "1x"
        assert by_name["commodity"] == "104x"
        # our fan-law fit gives 369x for the paper's 380x
        assert by_name["high-end"] in {"369x", "370x", "380x"}


class TestTableIII:
    def test_covers_all_classes(self):
        types = {r[0] for r in tables.table3_rows()}
        assert {"Arithmetic", "Bitwise", "Boolean", "Comparison"} <= types

    def test_arithmetic_maps_to_atomicadd(self):
        row = next(r for r in tables.table3_rows() if r[0] == "Arithmetic")
        assert "atomicAdd" in row[2]


class TestTableIV:
    def test_key_rows(self):
        rows = dict(tables.table4_rows())
        assert "16 PTX SMs" in rows["Host GPU"]
        assert "32 vaults, 512 DRAM banks" in rows["HMC vaults"]
        assert "13.75" in rows["DRAM timing"]
        assert "80 GB/s" in rows["Data bandwidth"]

    def test_all_tables_renders(self):
        out = tables.all_tables()
        assert "Table I" in out and "Table IV" in out
