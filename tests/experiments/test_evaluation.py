"""Evaluation matrix plumbing: caching, subsets, aggregates."""

import pytest

from repro.experiments.common import RunScale
from repro.experiments.evaluation import clear_cache, run_matrix

SCALE = RunScale.quick()


class TestMatrix:
    def test_cache_returns_same_object(self):
        a = run_matrix(SCALE, workloads=["kcore"], policies=["non-offloading"])
        b = run_matrix(SCALE, workloads=["kcore"], policies=["non-offloading"])
        assert a is b

    def test_cache_bypass(self):
        a = run_matrix(SCALE, workloads=["kcore"], policies=["non-offloading"])
        b = run_matrix(
            SCALE, workloads=["kcore"], policies=["non-offloading"],
            use_cache=False,
        )
        assert a is not b
        assert a.baseline("kcore").runtime_s == pytest.approx(
            b.baseline("kcore").runtime_s
        )

    def test_clear_cache(self):
        a = run_matrix(SCALE, workloads=["kcore"], policies=["non-offloading"])
        clear_cache()
        b = run_matrix(SCALE, workloads=["kcore"], policies=["non-offloading"])
        assert a is not b

    def test_subset_selection(self):
        m = run_matrix(
            SCALE,
            workloads=["dc", "kcore"],
            policies=["non-offloading", "ideal-thermal"],
        )
        assert m.workloads == ["dc", "kcore"]
        assert set(m.results["dc"]) == {"non-offloading", "ideal-thermal"}

    def test_speedup_and_geo_mean(self):
        m = run_matrix(
            SCALE,
            workloads=["dc", "kcore"],
            policies=["non-offloading", "ideal-thermal"],
        )
        assert m.speedup("dc", "non-offloading") == pytest.approx(1.0)
        geo = m.geo_mean_speedup("ideal-thermal")
        sus = [m.speedup(wl, "ideal-thermal") for wl in m.workloads]
        assert geo == pytest.approx((sus[0] * sus[1]) ** 0.5)
