"""Figs. 10–14 at quick scale: the evaluation's qualitative shape.

These run the full co-simulation on a reduced graph (RunScale.quick), so
they check orderings and invariants rather than the calibrated full-scale
magnitudes (EXPERIMENTS.md records those).
"""

import pytest

from repro.experiments import (
    fig10_speedup,
    fig11_bandwidth_savings,
    fig12_pim_rate_avg,
    fig13_peak_temp,
    fig14_time_series,
)
from repro.experiments.common import RunScale
from repro.experiments.evaluation import run_matrix

SCALE = RunScale.quick()
HOT = ["dc", "bfs-dwc", "pagerank"]
COOL = ["kcore", "sssp-dtc"]
QUICK_WORKLOADS = HOT + COOL


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(SCALE, workloads=QUICK_WORKLOADS)


class TestMatrix:
    def test_all_cells_present(self, matrix):
        assert set(matrix.workloads) == set(QUICK_WORKLOADS)
        for wl in matrix.workloads:
            assert len(matrix.results[wl]) == 5

    def test_baseline_never_offloads(self, matrix):
        for wl in matrix.workloads:
            assert matrix.baseline(wl).pim_ops == 0

    def test_ideal_dominates_everything(self, matrix):
        for wl in matrix.workloads:
            su_ideal = matrix.speedup(wl, "ideal-thermal")
            for policy in ("naive-offloading", "coolpim-sw", "coolpim-hw"):
                assert su_ideal >= matrix.speedup(wl, policy) - 1e-9

    def test_cool_benchmarks_unaffected_by_throttling(self, matrix):
        # kcore and sssp-dtc: naive == CoolPIM (Sec. V-B).
        for wl in COOL:
            naive = matrix.speedup(wl, "naive-offloading")
            for policy in ("coolpim-sw", "coolpim-hw"):
                assert matrix.speedup(wl, policy) == pytest.approx(
                    naive, rel=0.05
                )


class TestFig10:
    def test_speedups_and_geomeans(self, matrix):
        result = fig10_speedup.run(SCALE)
        # uses the cached matrix; spot-check consistency
        for wl in QUICK_WORKLOADS:
            assert result.speedups[wl]["ideal-thermal"] == pytest.approx(
                matrix.speedup(wl, "ideal-thermal")
            )
        assert result.geo_means["ideal-thermal"] > 1.0

    def test_formatting(self):
        result = fig10_speedup.run(SCALE)
        out = fig10_speedup.format_result(result)
        assert "geo-mean" in out and "CoolPIM(SW)" in out


class TestFig11:
    def test_offloading_reduces_total_traffic(self):
        result = fig11_bandwidth_savings.run(SCALE)
        for wl in HOT:
            assert result.traffic_ratio[wl]["naive-offloading"] < 1.0
            assert result.traffic_ratio[wl]["non-offloading"] == pytest.approx(1.0)

    def test_naive_saves_at_least_as_much_as_coolpim(self):
        result = fig11_bandwidth_savings.run(SCALE)
        for wl in HOT:
            naive = result.traffic_ratio[wl]["naive-offloading"]
            sw = result.traffic_ratio[wl]["coolpim-sw"]
            assert naive <= sw + 0.02


class TestFig12:
    def test_naive_rates_exceed_coolpim_on_hot_benchmarks(self, matrix):
        result = fig12_pim_rate_avg.run(SCALE)
        for wl in HOT:
            naive = result.rates[wl]["naive-offloading"]
            for p in ("coolpim-sw", "coolpim-hw"):
                assert result.rates[wl][p] <= naive + 1e-9

    def test_cool_benchmarks_below_threshold_natively(self):
        result = fig12_pim_rate_avg.run(SCALE)
        for wl in COOL:
            assert result.rates[wl]["naive-offloading"] < 1.5


class TestFig13:
    def test_coolpim_cooler_than_naive_on_hot_benchmarks(self):
        result = fig13_peak_temp.run(SCALE)
        for wl in HOT:
            naive = result.temps[wl]["naive-offloading"]
            for p in ("coolpim-sw", "coolpim-hw"):
                assert result.temps[wl][p] <= naive + 0.5


class TestFig14:
    def test_time_series_structure(self):
        result = fig14_time_series.run("dc", scale=SCALE, sample_ms=0.5)
        assert set(result.series) == {
            "naive-offloading", "coolpim-sw", "coolpim-hw"
        }
        for series in result.series.values():
            assert len(series) >= 1
            times = [t for t, _r, _T in series]
            assert times == sorted(times)

    def test_formatting(self):
        result = fig14_time_series.run("dc", scale=SCALE, sample_ms=0.5)
        out = fig14_time_series.format_result(result)
        assert "Time (ms)" in out
