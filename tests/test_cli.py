"""CLI: argument parsing and command dispatch."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank"])
        assert args.policy == "coolpim-hw"
        assert args.dataset == "ldbc"
        assert args.cooling == "commodity"

    def test_run_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "pagerank", "--policy", "nope"])

    def test_experiments_flags(self):
        args = build_parser().parse_args(
            ["experiments", "--quick", "--only", "fig5"]
        )
        assert args.quick and args.only == "fig5"

    def test_experiments_seed_flag(self):
        args = build_parser().parse_args(["experiments", "--seed", "7"])
        assert args.seed == 7

    def test_batch_flags(self):
        args = build_parser().parse_args(
            ["batch", "--quick", "--only", "fig5", "--jobs", "2",
             "--seed", "3", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.command == "batch"
        assert args.quick and args.only == "fig5" and args.jobs == 2
        assert args.seed == 3 and args.cache_dir == "/tmp/c" and args.no_cache

    def test_cache_defaults_to_stats(self):
        args = build_parser().parse_args(["cache"])
        assert args.action == "stats"

    def test_cache_rejects_bad_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "nope"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "kcore"])
        assert args.command == "trace"
        assert args.output == "trace.json"
        assert args.policy == "coolpim-hw" and not args.quick
        assert args.jsonl is None

    def test_trace_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "kcore", "--policy", "nope"])

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["report", "t.json", "--require", "engine,core", "--diff", "b.json"]
        )
        assert args.file == "t.json"
        assert args.require == "engine,core" and args.diff == "b.json"

    def test_cache_json_flag(self):
        args = build_parser().parse_args(["cache", "--json"])
        assert args.json and args.action == "stats"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8177
        assert args.workers == 2 and not args.pool and not args.no_cache
        assert args.tenant_quota == 64
        assert args.journal_max_bytes == 8_000_000
        assert args.drain_timeout == 10.0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--pool",
             "--cache-dir", "/tmp/c", "--tenant-quota", "8",
             "--drain-timeout", "2.5"]
        )
        assert args.port == 0 and args.workers == 4 and args.pool
        assert args.cache_dir == "/tmp/c" and args.tenant_quota == 8
        assert args.drain_timeout == 2.5

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDispatch:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pagerank" in out and "coolpim-hw" in out

    def test_run_small(self, capsys):
        rc = main(["run", "kcore", "--dataset", "ldbc-tiny",
                   "--policy", "non-offloading"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak DRAM temp" in out

    def test_compare_small(self, capsys):
        rc = main(["compare", "dc", "--dataset", "ldbc-tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ideal-thermal" in out

    def test_experiments_delegates(self, capsys):
        rc = main(["experiments", "--only", "tables"])
        assert rc == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "nope"]) == 2


class TestBatchDispatch:
    def test_batch_sweeps_through_pool_and_caches(self, tmp_path, capsys):
        from repro.service.journal import JobJournal

        argv = ["batch", "--quick", "--only", "tables,fig5", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "PIM rate" in out
        assert "2 executed" in out
        # Second invocation is served from the result cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out and "0 failed" in out
        counts = JobJournal.summary(tmp_path / "journal.jsonl")
        assert counts["cache_hit"] == 2 and counts["completed"] == 2

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        main(["batch", "--quick", "--only", "tables", "--jobs", "1",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 1" in out and "journal" in out
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "tables" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cache_json_machine_readable(self, tmp_path, capsys):
        import json

        main(["batch", "--quick", "--only", "tables", "--jobs", "1",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "--json", "--cache-dir", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 1
        assert doc["cache_dir"] == str(tmp_path)
        assert doc["journal"]["events"]["completed"] == 1

    def test_cache_json_only_valid_for_stats(self, tmp_path, capsys):
        assert main(["cache", "clear", "--json",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "--json" in capsys.readouterr().err


class TestTraceDispatch:
    def test_trace_produces_all_three_artifacts(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "kcore", "--dataset", "ldbc-tiny", "--quick",
                   "-o", str(out)])
        assert rc == 0
        # Chrome trace with spans from every instrumented layer.
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        for layer in ("engine", "core", "thermal", "scheduler", "sim"):
            assert layer in cats, f"missing {layer} spans"
        # Metrics + manifest written next to the trace.
        metrics = json.loads((tmp_path / "trace.metrics.json").read_text())
        assert any(k.startswith("sim.") for k in metrics["stats"])
        manifest = json.loads((tmp_path / "trace.manifest.json").read_text())
        assert manifest["command"] == "repro trace"

    def test_report_validates_and_requires_layers(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "kcore", "--dataset", "ldbc-tiny", "--quick",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out),
                     "--require", "engine,core,thermal,scheduler,sim"]) == 0
        assert "events" in capsys.readouterr().out
        # A layer that is never emitted fails the gate.
        assert main(["report", str(out), "--require", "nonexistent"]) == 1

    def test_report_renders_metrics_and_manifest(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "kcore", "--dataset", "ldbc-tiny", "--quick",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "trace.metrics.json")]) == 0
        assert "# metrics" in capsys.readouterr().out
        assert main(["report", str(tmp_path / "trace.manifest.json")]) == 0
        assert "run manifest" in capsys.readouterr().out

    def test_report_diff_of_identical_metrics(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "kcore", "--dataset", "ldbc-tiny", "--quick",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        metrics = str(tmp_path / "trace.metrics.json")
        assert main(["report", metrics, "--diff", metrics]) == 0
        assert "no metric differences" in capsys.readouterr().out

    def test_report_unknown_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"what": "ever"}')
        assert main(["report", str(bad)]) == 1

    def test_report_diff_exit_codes(self, tmp_path, capsys):
        """--diff is scriptable like diff(1): 0 equal, 1 changed, 2 error."""
        import json

        from repro.obs.metrics import export_metrics

        a = tmp_path / "a.metrics.json"
        b = tmp_path / "b.metrics.json"
        export_metrics({"sim.x": {"type": "counter", "value": 1}}, path=a)
        export_metrics({"sim.x": {"type": "counter", "value": 2}}, path=b)
        assert main(["report", str(a), "--diff", str(a)]) == 0
        capsys.readouterr()
        assert main(["report", str(a), "--diff", str(b)]) == 1
        assert "~ sim.x.value" in capsys.readouterr().out
        # Missing / invalid second file → 2, message on stderr.
        assert main(["report", str(a), "--diff",
                     str(tmp_path / "missing.json")]) == 2
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["report", str(broken), "--diff", str(a)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestBenchTrendDispatch:
    def _write(self, tmp_path, speed):
        import json

        (tmp_path / "BENCH_x.json").write_text(json.dumps({"speed": speed}))
        baselines = tmp_path / "baselines.json"
        baselines.write_text(json.dumps({
            "schema": "repro.bench-baselines/1",
            "benchmarks": {
                "bench": {
                    "source": "BENCH_x.json",
                    "metrics": {
                        "speed": {"baseline": 2.0, "min_ratio": 0.5}
                    },
                }
            },
        }))
        return str(baselines)

    def test_pass_and_report_file(self, tmp_path, capsys):
        baselines = self._write(tmp_path, 2.0)
        report = tmp_path / "trend.txt"
        rc = main(["bench-trend", "--dir", str(tmp_path),
                   "--baselines", baselines, "--check",
                   "--report", str(report)])
        assert rc == 0
        assert "all within tolerance" in capsys.readouterr().out
        assert "all within tolerance" in report.read_text()

    def test_regression_gates_with_check(self, tmp_path, capsys):
        baselines = self._write(tmp_path, 0.1)
        assert main(["bench-trend", "--dir", str(tmp_path),
                     "--baselines", baselines, "--check"]) == 1
        assert "regression" in capsys.readouterr().out
        # Informational mode: report prints but does not gate.
        assert main(["bench-trend", "--dir", str(tmp_path),
                     "--baselines", baselines]) == 0

    def test_structural_error_exits_two(self, tmp_path, capsys):
        assert main(["bench-trend", "--dir", str(tmp_path),
                     "--baselines", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestRunnerArtifacts:
    def test_out_dir_written(self, tmp_path, capsys):
        from repro.experiments import runner

        rc = runner.main(["--only", "tables,fig5", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tables.txt").exists()
        fig5 = (tmp_path / "fig5.txt").read_text()
        assert "PIM rate" in fig5

    def test_out_dir_gets_manifest(self, tmp_path, capsys):
        from repro.experiments import runner
        from repro.obs.manifest import RunManifest

        rc = runner.main(
            ["--only", "tables", "--out", str(tmp_path), "--seed", "4"]
        )
        assert rc == 0
        manifest = RunManifest.load(tmp_path / "manifest.json")
        assert manifest.command == "repro.experiments.runner"
        assert manifest.seed == 4
        assert manifest.config["experiments"] == ["tables"]
        assert manifest.extra == {"ok": True}
        assert str(tmp_path / "tables.txt") in manifest.outputs

    def test_run_experiment_by_id(self):
        from repro.experiments import runner
        from repro.experiments.common import RunScale

        text = runner.run_experiment("fig5", RunScale.quick())
        assert "PIM rate" in text
        with pytest.raises(KeyError):
            runner.run_experiment("nope")

    def test_seed_flows_into_scale(self):
        from repro.experiments.common import RunScale, scaled_workload

        w = scaled_workload("pagerank", RunScale.quick(seed=11))
        assert w.seed == 11
