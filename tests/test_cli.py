"""CLI: argument parsing and command dispatch."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank"])
        assert args.policy == "coolpim-hw"
        assert args.dataset == "ldbc"
        assert args.cooling == "commodity"

    def test_run_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "pagerank", "--policy", "nope"])

    def test_experiments_flags(self):
        args = build_parser().parse_args(
            ["experiments", "--quick", "--only", "fig5"]
        )
        assert args.quick and args.only == "fig5"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDispatch:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pagerank" in out and "coolpim-hw" in out

    def test_run_small(self, capsys):
        rc = main(["run", "kcore", "--dataset", "ldbc-tiny",
                   "--policy", "non-offloading"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak DRAM temp" in out

    def test_compare_small(self, capsys):
        rc = main(["compare", "dc", "--dataset", "ldbc-tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ideal-thermal" in out

    def test_experiments_delegates(self, capsys):
        rc = main(["experiments", "--only", "tables"])
        assert rc == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "nope"]) == 2


class TestRunnerArtifacts:
    def test_out_dir_written(self, tmp_path, capsys):
        from repro.experiments import runner

        rc = runner.main(["--only", "tables,fig5", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tables.txt").exists()
        fig5 = (tmp_path / "fig5.txt").read_text()
        assert "PIM rate" in fig5
