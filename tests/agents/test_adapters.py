"""Agent harness: the adapter layer must be invisible to the engines.

The contract locked here: wrapping any paper policy as an agent
(``AgentPolicy(PolicyAgent(policy))``) and running it through either
engine produces a **bit-identical** ``SimulationResult`` to running the
bare policy — same aggregates, same event counts, same timelines. The
non-policy agents (scripted schedule, hill climbing) must themselves
agree between the macro and stepped engines.
"""

import pytest

from repro.agents import (
    ACTION_NONE,
    Action,
    AgentPolicy,
    HillClimbAgent,
    Observation,
    PolicyAgent,
    ScriptedAgent,
    as_agent,
    as_policy,
)
from repro.core.policies import POLICY_NAMES, OffloadPolicy, make_policy
from repro.thermal.cooling import COMMODITY_SERVER, LOW_END_ACTIVE

from tests.gpu.test_macro_equivalence import (
    EXACT_FIELDS,
    assert_equivalent,
    build_sim,
    hot_launch,
    run_both,
)


def wrapped(name):
    """Factory: the paper policy behind the full agent round-trip."""
    return lambda: as_policy(PolicyAgent(make_policy(name)))


def run_pair(launch, engine, name, cooling):
    """One engine, bare policy vs adapter-wrapped policy."""
    results = []
    for factory in (lambda: make_policy(name), wrapped(name)):
        sim = build_sim(engine, cooling=cooling)
        results.append((sim.run(launch, factory()), sim.stats.snapshot()))
    return results


class TestPolicyAdapterBitIdentity:
    """Bare policy vs agent-wrapped policy: exact result equality."""

    @pytest.mark.parametrize("engine", ["stepped", "macro"])
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_cool_run_identical(self, engine, name):
        (bare, bare_stats), (agent, agent_stats) = run_pair(
            hot_launch(n_epochs=3), engine, name, COMMODITY_SERVER
        )
        for field in EXACT_FIELDS:
            assert getattr(agent, field) == getattr(bare, field), field
        assert agent.peak_dram_temp_c == bare.peak_dram_temp_c
        assert agent.timeline == bare.timeline
        assert agent_stats == bare_stats

    @pytest.mark.parametrize("engine", ["stepped", "macro"])
    @pytest.mark.parametrize("name", ["coolpim-sw", "coolpim-hw"])
    def test_hot_run_identical(self, engine, name):
        """Warning-band oscillation: the adapter must forward every
        on_thermal_warning at the exact instant with the exact temp."""
        (bare, bare_stats), (agent, agent_stats) = run_pair(
            hot_launch(), engine, name, LOW_END_ACTIVE
        )
        assert bare.thermal_warnings > 10  # the band is actually exercised
        for field in EXACT_FIELDS:
            assert getattr(agent, field) == getattr(bare, field), field
        assert agent.peak_dram_temp_c == bare.peak_dram_temp_c
        assert agent.timeline == bare.timeline
        assert agent_stats == bare_stats

    @pytest.mark.parametrize("name", POLICY_NAMES + ["static-0.5"])
    def test_wrapped_policies_agree_across_engines(self, name):
        assert_equivalent(run_both(hot_launch(n_epochs=4), wrapped(name)))


class TestScriptedAgent:
    def test_engines_agree(self):
        schedule = [(0.0, 1.0), (1e-3, 0.25), (3e-3, 0.75)]
        assert_equivalent(
            run_both(hot_launch(), lambda: as_policy(ScriptedAgent(schedule)))
        )

    def test_schedule_is_honored(self):
        agent = ScriptedAgent([(1.0, 0.25), (2.0, 0.5)])
        assert agent.observe(Observation("step", 0.5)).fraction == 1.0
        assert agent.observe(Observation("step", 1.0)).fraction == 0.25
        assert agent.observe(Observation("step", 1.5)).fraction == 0.25
        assert agent.observe(Observation("step", 9.0)).fraction == 0.5

    def test_warning_is_noop(self):
        agent = ScriptedAgent([(0.0, 0.5)])
        assert agent.observe(Observation("warning", 1.0, warning=True)) is ACTION_NONE
        assert agent.warning_noop_until(1.0) == float("inf")

    def test_horizon_is_next_breakpoint(self):
        agent = ScriptedAgent([(1.0, 0.25), (2.0, 0.5)])
        assert agent.fraction_horizon(0.0) == 1.0
        assert agent.fraction_horizon(1.0) == 2.0
        assert agent.fraction_horizon(5.0) == float("inf")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ScriptedAgent([(0.0, 1.5)])


class TestHillClimbAgent:
    def test_engines_agree_on_hot_trace(self):
        assert_equivalent(
            run_both(
                hot_launch(),
                lambda: as_policy(HillClimbAgent()),
                cooling=LOW_END_ACTIVE,
            )
        )

    def test_throttles_under_sustained_warnings(self):
        sim = build_sim("stepped", cooling=LOW_END_ACTIVE)
        policy = as_policy(HillClimbAgent())
        result = sim.run(hot_launch(), policy)
        assert result.thermal_warnings > 0
        assert policy.fraction_history  # it actually acted
        assert min(f for _, f in policy.fraction_history) < 1.0

    def test_factor_doubles_on_repeated_warnings(self):
        agent = HillClimbAgent(control_factor=0.125, act_period_s=1.0)
        a1 = agent.observe(Observation("warning", 0.0, warning=True))
        assert a1.fraction == pytest.approx(0.875)
        # Inside the rate-limit window: no-op.
        assert agent.observe(Observation("warning", 0.5, warning=True)) is ACTION_NONE
        # Next warning after the window: the last action was a cut that
        # failed to clear the warning, so the factor doubles to 0.25.
        a2 = agent.observe(Observation("warning", 1.5, warning=True))
        assert a2.fraction == pytest.approx(0.875 - 0.25)

    def test_quiet_stretch_relaxes(self):
        agent = HillClimbAgent(recover_period_s=1.0, recover_step=0.0625)
        agent.observe(Observation("warning", 0.0, warning=True))
        # Too soon, and warning still latched: hold.
        assert agent.observe(Observation("step", 0.5)) is ACTION_NONE
        assert (
            agent.observe(Observation("step", 2.0, warning=True)) is ACTION_NONE
        )
        act = agent.observe(Observation("step", 2.0))
        assert act.fraction == pytest.approx(1.0 - 0.125 + 0.0625)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            HillClimbAgent(initial_fraction=1.5)
        with pytest.raises(ValueError):
            HillClimbAgent(control_factor=0.6, max_factor=0.5)


class TestAdapterPlumbing:
    def test_coercers_round_trip(self):
        policy = make_policy("coolpim-sw")
        agent = as_agent(policy)
        assert isinstance(agent, PolicyAgent)
        assert as_agent(agent) is agent
        assert as_policy(policy) is policy
        back = as_policy(agent)
        assert isinstance(back, AgentPolicy)
        assert back.name == policy.name

    def test_coercers_reject_other_types(self):
        with pytest.raises(TypeError):
            as_agent(object())
        with pytest.raises(TypeError):
            as_policy(42)

    def test_unbound_agent_policy_degrades_gracefully(self):
        """Unit-test usage without a simulator: no sensor, no flow."""
        policy = as_policy(ScriptedAgent([(0.0, 0.5)]))
        policy.begin(None)
        assert policy.pim_fraction(0.0) == 0.5
        policy.on_thermal_warning(1.0, 90.0)  # must not raise
        assert policy.pim_fraction(2.0) == 0.5

    def test_action_fraction_is_clamped(self):
        class Wild(ScriptedAgent):
            def observe(self, obs):
                return Action(fraction=3.0)

        policy = as_policy(Wild([(0.0, 1.0)]))
        policy.begin(None)
        assert policy.pim_fraction(0.0) == 1.0

    def test_thermal_exempt_passes_through(self):
        assert as_policy(PolicyAgent(make_policy("ideal-thermal"))).thermal_exempt
        assert not as_policy(PolicyAgent(make_policy("coolpim-sw"))).thermal_exempt

    def test_reuse_across_runs_resets_state(self):
        """One AgentPolicy object, two launches: no history leak."""
        policy = as_policy(ScriptedAgent([(0.0, 0.5)]))
        sim = build_sim("stepped")
        sim.run(hot_launch(n_epochs=2), policy)
        first = list(policy.fraction_history)
        sim2 = build_sim("stepped")
        sim2.run(hot_launch(n_epochs=2), policy)
        assert policy.fraction_history == first
