"""Gang-engine equivalence: lockstep lanes must equal solo macro runs.

The gang correctness contract (see :mod:`repro.gpu.gang`) is *bit*
equality: every lane of a gang produces exactly the ``SimulationResult``
its configuration would produce through a per-run macro execution — which
is itself equivalent to the stepped oracle (tests/gpu/
test_macro_equivalence.py). The suite chains both comparisons: seeded
randomized traces across lane counts (hypothesis), the full policy
matrix on a hot trace, forced divergence where one lane shuts down on
passive cooling while the others run clean on commodity cooling, and the
``repro_gang_*`` telemetry series.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import StaticFraction, make_policy
from repro.gpu.gang import GangEngine, build_lane, run_gang
from repro.gpu.simulator import SystemSimulator
from repro.hmc.config import HMC_2_0
from repro.hmc.flow import HmcFlowModel
from repro.thermal.cooling import COMMODITY_SERVER, PASSIVE
from repro.thermal.model import HmcThermalModel
from repro.thermal.sensor import ThermalSensor

from tests.gpu.test_macro_equivalence import (
    EXACT_COUNTERS,
    EXACT_FIELDS,
    POLICY_NAMES,
    assert_equivalent,
    hot_launch,
    make_launch,
    random_batches,
    run_both,
)


def run_solo(launch, policy, cooling=COMMODITY_SERVER):
    """Per-run macro reference for one gang member configuration."""
    sim = SystemSimulator(
        flow=HmcFlowModel(HMC_2_0),
        thermal=HmcThermalModel(HMC_2_0, cooling=cooling),
        sensor=ThermalSensor(),
        engine="macro",
    )
    pol = make_policy(policy) if isinstance(policy, str) else policy()
    result = sim.run(launch, pol)
    return result, sim.stats.snapshot()


def run_as_gang(launch, members):
    """Run ``members`` — (policy, cooling) pairs — as one gang.

    Returns ``[(result, stats_snapshot)]`` in member order plus the
    engine (for divergence/telemetry assertions).
    """
    lanes = []
    for policy, cooling in members:
        pol = make_policy(policy) if isinstance(policy, str) else policy()
        lanes.append(build_lane(launch, pol, cooling=cooling))
    engine = GangEngine(lanes)
    results = engine.run()
    return [
        (res, lane.sim.stats.snapshot())
        for res, lane in zip(results, lanes)
    ], engine


def assert_bit_equal(gang_out, solo_out, label=""):
    """Gang lane vs solo macro: *exact* equality, temperatures included.

    The macro↔stepped comparison tolerates 1e-6 °C on temperatures; the
    gang↔macro contract is stricter — the lane replays the identical
    float sequence, so even ``peak_dram_temp_c`` and the timeline
    temperatures must match bit for bit.
    """
    rg, sg = gang_out
    rs, ss = solo_out
    for field in EXACT_FIELDS:
        assert getattr(rg, field) == getattr(rs, field), (label, field)
    assert rg.peak_dram_temp_c == rs.peak_dram_temp_c, label
    # Timeline equality pins the *instants*: every sampled time, peak
    # temperature, PIM rate, and offload fraction along the run.
    assert rg.timeline == rs.timeline, label
    for key in EXACT_COUNTERS:
        assert sg.get(key) == ss.get(key), (label, key)


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_gang_matches_macro_and_stepped(policy):
    """Chained contract on a hot trace: gang ≡ macro (exact) and
    macro ≡ stepped (the documented engine equivalence)."""
    launch = hot_launch()
    out = run_both(launch, policy)
    assert_equivalent(out)
    gang, _ = run_as_gang(launch, [(p, COMMODITY_SERVER) for p in POLICY_NAMES])
    idx = POLICY_NAMES.index(policy)
    solo = (out["macro"][0], out["macro"][1])
    assert_bit_equal(gang[idx], solo, label=policy)


def test_forced_divergence_one_lane_shuts_down():
    """One lane rides passive cooling into shutdown while its gang mates
    run clean: the diverged lane must finish on the per-run path with its
    solo float sequence intact, without perturbing the clean lanes."""
    launch = hot_launch(n_epochs=6)
    members = [
        ("naive-offloading", PASSIVE),
        ("coolpim-hw", COMMODITY_SERVER),
        ("non-offloading", COMMODITY_SERVER),
    ]
    gang, engine = run_as_gang(launch, members)
    assert gang[0][0].shutdowns >= 1, "hot lane must hit the kill switch"
    assert gang[1][0].shutdowns == 0
    assert gang[2][0].shutdowns == 0
    for (policy, cooling), lane_out in zip(members, gang):
        assert_bit_equal(
            lane_out, run_solo(launch, policy, cooling=cooling), label=policy
        )


@settings(max_examples=8, deadline=None)
@given(
    batches=random_batches,
    n_lanes=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gang_property_over_lane_counts(batches, n_lanes, seed):
    """Seeded randomized traces × lane counts: every lane bit-equals its
    solo macro run. Lane configs mix the registry policies with seeded
    static offload fractions, so the gang exercises heterogeneous
    control-flow divergence (different burst lengths per lane)."""
    import random

    rng = random.Random(seed)
    launch = make_launch(batches)
    members = []
    for i in range(n_lanes):
        if rng.random() < 0.5:
            members.append((rng.choice(POLICY_NAMES), COMMODITY_SERVER))
        else:
            fraction = rng.random()
            members.append(
                ((lambda f=fraction: StaticFraction(f)), COMMODITY_SERVER)
            )
    gang, _ = run_as_gang(launch, members)
    for (policy, cooling), lane_out in zip(members, gang):
        assert_bit_equal(
            lane_out, run_solo(launch, policy, cooling=cooling),
            label=f"lane{members.index((policy, cooling))}",
        )


def test_gang_of_one_is_macro():
    """A single-lane gang degrades to exactly the per-run macro path."""
    launch = hot_launch()
    gang, engine = run_as_gang(launch, [("coolpim-sw", COMMODITY_SERVER)])
    assert_bit_equal(gang[0], run_solo(launch, "coolpim-sw"), label="solo-gang")
    assert engine.batched_marches == 0


def test_run_gang_workload_entrypoint_matches_facade():
    """`run_gang` over a real workload equals sequential CoolPimSystem
    runs, and the member-order contract holds for (policy, cooling)
    tuples."""
    from repro.core import CoolPimSystem
    from repro.graph import get_dataset
    from repro.workloads import get_workload

    graph = get_dataset("ldbc-small")
    wl = get_workload("pagerank", seed=0)
    policies = ["non-offloading", "coolpim-hw"]
    results = run_gang(wl, graph, policies)
    system = CoolPimSystem(engine="macro")
    for policy, got in zip(policies, results):
        ref = system.run(wl, graph, policy)
        assert got.runtime_s == ref.runtime_s
        assert got.peak_dram_temp_c == ref.peak_dram_temp_c
        assert got.thermal_warnings == ref.thermal_warnings
        assert got.phase_time_s == ref.phase_time_s


def test_gang_telemetry_series():
    """A gang run folds into the ``repro_gang_*`` telemetry series."""
    from repro.telemetry import get_registry

    reg = get_registry()

    def value(name):
        return reg.counter(name, "t").value

    before = {
        name: value(name)
        for name in (
            "repro_gang_runs_total",
            "repro_gang_lanes_total",
            "repro_gang_rounds_total",
            "repro_gang_detached_lanes_total",
        )
    }
    launch = hot_launch()
    _, engine = run_as_gang(
        launch, [(p, COMMODITY_SERVER) for p in POLICY_NAMES]
    )
    assert value("repro_gang_runs_total") == before["repro_gang_runs_total"] + 1
    assert value("repro_gang_lanes_total") == (
        before["repro_gang_lanes_total"] + len(POLICY_NAMES)
    )
    assert value("repro_gang_rounds_total") >= (
        before["repro_gang_rounds_total"] + engine.rounds
    )
    assert value("repro_gang_detached_lanes_total") == (
        before["repro_gang_detached_lanes_total"]
    ), "no lane should permanently detach on a healthy basis"
    # Mean lane occupancy is a fraction of the gang size by construction.
    hist = reg.histogram("repro_gang_lane_occupancy", "t").children()[0]
    assert hist.count >= 1
