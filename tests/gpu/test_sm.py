"""SM compute model: issue floor and divergence serialization."""

import pytest

from repro.gpu.config import GPU_DEFAULT
from repro.gpu.sm import DIVERGENCE_SERIALIZATION, SmArray
from repro.sim.trace import OpBatch


@pytest.fixture
def sm():
    return SmArray(GPU_DEFAULT)


class TestComputeTime:
    def test_zero_compute_is_instant(self, sm):
        assert sm.compute_time_ns(OpBatch(1, 1, 1, compute_cycles=0)) == 0.0

    def test_scales_with_instructions(self, sm):
        t1 = sm.compute_time_ns(OpBatch(0, 0, 0, compute_cycles=1000))
        t2 = sm.compute_time_ns(OpBatch(0, 0, 0, compute_cycles=2000))
        assert t2 == pytest.approx(2 * t1)

    def test_peak_issue_rate(self, sm):
        t = sm.compute_time_ns(OpBatch(0, 0, 0, compute_cycles=44800))
        assert t == pytest.approx(1000.0)  # 44.8 warp-instr/ns

    def test_divergence_inflates(self, sm):
        base = sm.compute_time_ns(OpBatch(0, 0, 0, compute_cycles=1000))
        div = sm.compute_time_ns(
            OpBatch(0, 0, 0, compute_cycles=1000, divergent_warp_ratio=1.0)
        )
        assert div == pytest.approx(base * DIVERGENCE_SERIALIZATION)


class TestOccupancy:
    def test_full_gpu(self, sm):
        assert sm.occupancy_limit(GPU_DEFAULT.max_concurrent_blocks) == 1.0

    def test_partial(self, sm):
        cap = GPU_DEFAULT.max_concurrent_blocks
        assert sm.occupancy_limit(cap // 2) == pytest.approx(0.5)

    def test_oversubscribed_caps_at_one(self, sm):
        assert sm.occupancy_limit(10_000) == 1.0

    def test_negative_rejected(self, sm):
        with pytest.raises(ValueError):
            sm.occupancy_limit(-1)
