"""Kernel launches: geometry and static analysis for Eq. (1)."""

import pytest

from repro.gpu.config import GPU_DEFAULT
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor


def make_launch(batches, threads=1024):
    return KernelLaunch(
        name="test", trace=TraceCursor(batches), total_threads=threads,
        config=GPU_DEFAULT,
    )


class TestGeometry:
    def test_block_and_warp_counts(self):
        launch = make_launch([], threads=1000)
        assert launch.num_blocks == 4   # ceil(1000/256)
        assert launch.num_warps == 32   # ceil(1000/32)

    def test_positive_threads(self):
        with pytest.raises(ValueError):
            make_launch([], threads=0)


class TestStaticAnalysis:
    def test_pim_intensity_is_atomic_fraction(self):
        launch = make_launch([
            OpBatch(reads=30, writes=10, atomics=20),
            OpBatch(reads=20, writes=0, atomics=20),
        ])
        # 40 atomics / 100 total ops
        assert launch.pim_intensity() == pytest.approx(0.4)

    def test_zero_ops_intensity(self):
        launch = make_launch([OpBatch(0, 0, 0)])
        assert launch.pim_intensity() == 0.0

    def test_divergence_thread_weighted(self):
        launch = make_launch([
            OpBatch(1, 0, 0, threads=100, divergent_warp_ratio=0.5),
            OpBatch(1, 0, 0, threads=300, divergent_warp_ratio=0.1),
        ])
        assert launch.divergent_warp_ratio() == pytest.approx(0.2)

    def test_totals_aggregate(self):
        launch = make_launch([OpBatch(1, 2, 3), OpBatch(4, 5, 6)])
        totals = launch.totals()
        assert (totals.reads, totals.writes, totals.atomics) == (5, 7, 9)
