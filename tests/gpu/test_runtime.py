"""Discrete GPU runtime: FCFS token launches and thermal interrupts."""

import pytest

from repro.core.token_pool import PimTokenPool
from repro.gpu.runtime import CodeVersion, GpuRuntime, ThreadBlockManager
from repro.hmc.packet import ERRSTAT_OK, ERRSTAT_THERMAL_WARNING


class TestThreadBlockManager:
    def test_blocks_get_pim_code_while_tokens_last(self):
        mgr = ThreadBlockManager(PimTokenPool(size=2))
        versions = [mgr.launch_block().version for _ in range(4)]
        assert versions == [
            CodeVersion.PIM, CodeVersion.PIM,
            CodeVersion.NON_PIM, CodeVersion.NON_PIM,
        ]

    def test_completion_returns_token(self):
        mgr = ThreadBlockManager(PimTokenPool(size=1))
        rec = mgr.launch_block()
        assert rec.version is CodeVersion.PIM
        assert mgr.launch_block().version is CodeVersion.NON_PIM
        mgr.complete_block(rec.block_id)
        assert mgr.launch_block().version is CodeVersion.PIM

    def test_non_pim_completion_returns_nothing(self):
        mgr = ThreadBlockManager(PimTokenPool(size=0))
        rec = mgr.launch_block()
        mgr.complete_block(rec.block_id)
        assert mgr.pool.issued == 0

    def test_in_flight_accounting(self):
        mgr = ThreadBlockManager(PimTokenPool(size=1))
        a = mgr.launch_block()
        mgr.launch_block()
        assert mgr.in_flight_blocks == 2
        assert mgr.in_flight_pim_blocks == 1
        mgr.complete_block(a.block_id)
        assert mgr.in_flight_blocks == 1

    def test_unknown_completion(self):
        mgr = ThreadBlockManager(PimTokenPool(size=1))
        with pytest.raises(KeyError):
            mgr.complete_block(99)

    def test_completion_timestamps(self):
        mgr = ThreadBlockManager(PimTokenPool(size=1))
        rec = mgr.launch_block(now_s=1.0)
        mgr.complete_block(rec.block_id, now_s=2.5)
        assert rec.launched_at == 1.0 and rec.completed_at == 2.5


class TestGpuRuntime:
    def test_thermal_errstat_triggers_interrupt(self):
        mgr = ThreadBlockManager(PimTokenPool(size=20))
        rt = GpuRuntime(manager=mgr, control_factor=8)
        mgr.pool.issued = 20
        fired = rt.on_response_errstat(ERRSTAT_THERMAL_WARNING)
        assert fired
        assert rt.interrupts_handled == 1
        assert mgr.pool.size == 12

    def test_ok_errstat_ignored(self):
        rt = GpuRuntime(manager=ThreadBlockManager(PimTokenPool(size=4)))
        assert not rt.on_response_errstat(ERRSTAT_OK)
        assert rt.manager.pool.size == 4
