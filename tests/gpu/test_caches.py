"""Cache model: hit filtering, atomic splitting, coalescing."""

import pytest

from repro.gpu.caches import CacheModel, MemoryTraffic
from repro.gpu.config import GPU_DEFAULT
from repro.sim.trace import OpBatch


class TestFilter:
    def test_hit_rates_reduce_traffic(self):
        cache = CacheModel(GPU_DEFAULT, read_hit_rate=0.75, write_hit_rate=0.5)
        t = cache.filter(OpBatch(reads=100, writes=10, atomics=7))
        assert t.reads == 25
        assert t.writes == 5

    def test_atomics_bypass_cache(self):
        # Offloading-target data is uncacheable (Sec. II-B).
        cache = CacheModel(GPU_DEFAULT, read_hit_rate=1.0, write_hit_rate=1.0)
        t = cache.filter(OpBatch(reads=10, writes=10, atomics=42,
                                 atomics_with_return=9))
        assert t.atomics == 42
        assert t.atomics_with_return == 9
        assert t.reads == 0

    def test_hit_rate_bounds(self):
        with pytest.raises(ValueError):
            CacheModel(GPU_DEFAULT, read_hit_rate=1.1)
        with pytest.raises(ValueError):
            CacheModel(GPU_DEFAULT, host_atomic_coalescing=-0.1)


class TestDemandSplit:
    def _traffic(self):
        return MemoryTraffic(reads=100, writes=50, atomics=40,
                             atomics_with_return=10)

    def test_full_offload(self):
        cache = CacheModel(GPU_DEFAULT, host_atomic_coalescing=0.5)
        d = cache.demand(self._traffic(), pim_fraction=1.0)
        assert d.pim_ops + d.pim_ops_ret == 40
        assert d.pim_ops_ret == 10
        assert d.host_atomics == 0

    def test_no_offload_applies_coalescing(self):
        cache = CacheModel(GPU_DEFAULT, host_atomic_coalescing=0.5)
        d = cache.demand(self._traffic(), pim_fraction=0.0)
        assert d.pim_ops == d.pim_ops_ret == 0
        assert d.host_atomics == 20  # 40 x 0.5

    def test_partial_split_conserves_atomics(self):
        cache = CacheModel(GPU_DEFAULT, host_atomic_coalescing=1.0)
        d = cache.demand(self._traffic(), pim_fraction=0.5)
        assert d.pim_ops + d.pim_ops_ret + d.host_atomics == 40

    def test_reads_writes_passed_through(self):
        cache = CacheModel(GPU_DEFAULT)
        d = cache.demand(self._traffic(), 0.3)
        assert d.reads == 100 and d.writes == 50

    def test_fraction_bounds(self):
        cache = CacheModel(GPU_DEFAULT)
        with pytest.raises(ValueError):
            cache.demand(self._traffic(), 1.5)


class TestMemoryTraffic:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryTraffic(reads=-1, writes=0, atomics=0, atomics_with_return=0)
        with pytest.raises(ValueError):
            MemoryTraffic(reads=0, writes=0, atomics=1, atomics_with_return=2)


class TestCoherenceModes:
    def _traffic(self):
        return MemoryTraffic(reads=100, writes=50, atomics=40,
                             atomics_with_return=0)

    def test_bypass_adds_no_coherence_traffic(self):
        cache = CacheModel(GPU_DEFAULT, coherence_mode="bypass")
        d = cache.demand(self._traffic(), pim_fraction=1.0)
        assert d.writes == 50

    def test_writeback_adds_dirty_writebacks(self):
        cache = CacheModel(GPU_DEFAULT, coherence_mode="writeback",
                           pei_dirty_fraction=0.5)
        d = cache.demand(self._traffic(), pim_fraction=1.0)
        assert d.writes == 50 + 20  # 40 offloaded x 0.5 dirty

    def test_writeback_without_offloading_is_free(self):
        cache = CacheModel(GPU_DEFAULT, coherence_mode="writeback",
                           pei_dirty_fraction=0.5)
        d = cache.demand(self._traffic(), pim_fraction=0.0)
        assert d.writes == 50

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CacheModel(GPU_DEFAULT, coherence_mode="nope")

    def test_dirty_fraction_bounds(self):
        with pytest.raises(ValueError):
            CacheModel(GPU_DEFAULT, pei_dirty_fraction=1.5)
