"""System simulator: policy effects, thermal coupling, accounting."""

import pytest

from repro.core.policies import (
    IdealThermal,
    NaiveOffloading,
    NonOffloading,
)
from repro.gpu.caches import CacheModel
from repro.gpu.config import GPU_DEFAULT
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SystemSimulator
from repro.sim.trace import OpBatch, TraceCursor
from repro.thermal.power import TrafficPoint


def make_launch(batches):
    return KernelLaunch(
        name="synthetic", trace=TraceCursor(batches), total_threads=4096,
    )


def synthetic_batches(n_epochs=4, atomics=200_000):
    return [
        OpBatch(reads=100_000, writes=60_000, atomics=atomics,
                compute_cycles=10_000, threads=4096, label=f"e{i}")
        for i in range(n_epochs)
    ]


@pytest.fixture
def sim():
    return SystemSimulator()


class TestBasics:
    def test_non_offloading_has_zero_pim(self, sim):
        res = sim.run(make_launch(synthetic_batches()), NonOffloading())
        assert res.pim_ops == 0
        assert res.host_atomics > 0
        assert res.runtime_s > 0

    def test_naive_offloads_everything(self, sim):
        res = sim.run(make_launch(synthetic_batches()), NaiveOffloading())
        assert res.host_atomics == 0
        assert res.offload_fraction == pytest.approx(1.0, abs=0.01)

    def test_offloading_faster_when_cool(self, sim):
        launch = make_launch(synthetic_batches(n_epochs=2))
        base = sim.run(launch, NonOffloading())
        ideal = sim.run(launch, IdealThermal())
        assert ideal.speedup_over(base) > 1.0

    def test_trace_fully_consumed_and_replayable(self, sim):
        launch = make_launch(synthetic_batches(n_epochs=3))
        r1 = sim.run(launch, NonOffloading())
        r2 = sim.run(launch, NonOffloading())
        assert r1.runtime_s == pytest.approx(r2.runtime_s)
        assert r1.total_atomics == r2.total_atomics == 600_000

    def test_empty_trace(self, sim):
        res = sim.run(make_launch([]), NonOffloading())
        assert res.runtime_s == 0.0
        assert res.link_bytes == 0


class TestThermalCoupling:
    def test_ideal_thermal_never_heats(self, sim):
        res = sim.run(make_launch(synthetic_batches(8)), IdealThermal())
        assert res.peak_dram_temp_c <= sim.thermal.ambient_c + 1e-6
        assert res.thermal_warnings == 0

    def test_hot_workload_warms_and_warns(self, sim):
        # Atomic-heavy trace long enough to cross 85 C under naive offload.
        batches = [
            OpBatch(reads=20_000, writes=15_000, atomics=150_000,
                    threads=4096, label=f"e{i}")
            for i in range(200)
        ]
        res = sim.run(make_launch(batches), NaiveOffloading())
        assert res.peak_dram_temp_c > 85.0
        assert res.thermal_warnings > 0
        assert res.phase_time_s["EXTENDED"] > 0

    def test_warm_start_temperature(self, sim):
        res = sim.run(make_launch(synthetic_batches(1)), NonOffloading())
        expected = sim.thermal.steady_peak_dram_c(sim.warm_start)
        assert res.peak_dram_temp_c >= expected - 1.0


class TestAccounting:
    def test_atomic_conservation(self, sim):
        launch = make_launch(synthetic_batches(n_epochs=2, atomics=100_000))
        res = sim.run(launch, NaiveOffloading())
        assert res.total_atomics == 200_000
        assert res.pim_ops == pytest.approx(200_000, rel=0.01)

    def test_bandwidth_metrics(self, sim):
        res = sim.run(make_launch(synthetic_batches(2)), NonOffloading())
        assert res.avg_link_bandwidth_gbs > 0
        assert res.data_bytes > 0
        assert res.avg_pim_rate_ops_ns == 0.0

    def test_timeline_sampled(self, sim):
        res = sim.run(make_launch(synthetic_batches(8)), NaiveOffloading())
        assert len(res.timeline) >= 2
        times = [t for t, *_ in res.timeline]
        assert times == sorted(times)

    def test_speedup_requires_positive_runtime(self, sim):
        res = sim.run(make_launch([]), NonOffloading())
        with pytest.raises(ValueError):
            res.speedup_over(res)


class TestAtomicThroughputCeiling:
    def test_host_atomics_bound_the_baseline(self):
        # A trace that is almost pure atomics: baseline time must be close
        # to atomics / host_atomic_ops_per_ns.
        sim = SystemSimulator(cache=CacheModel(GPU_DEFAULT,
                                               host_atomic_coalescing=1.0))
        n = 500_000
        launch = make_launch([OpBatch(reads=0, writes=0, atomics=n,
                                      threads=4096)])
        res = sim.run(launch, NonOffloading())
        floor_s = n / GPU_DEFAULT.host_atomic_ops_per_ns * 1e-9
        assert res.runtime_s >= floor_s * 0.95

    def test_offloading_lifts_the_ceiling(self):
        sim = SystemSimulator(cache=CacheModel(GPU_DEFAULT,
                                               host_atomic_coalescing=1.0))
        n = 500_000
        launch = make_launch([OpBatch(reads=0, writes=0, atomics=n,
                                      threads=4096)])
        base = sim.run(launch, NonOffloading())
        ideal = sim.run(launch, IdealThermal())
        # PIM path: link-bound at 48 B/op rather than ROP-bound.
        assert ideal.speedup_over(base) > 1.5


class TestValidation:
    def test_control_quantum_positive(self):
        with pytest.raises(ValueError):
            SystemSimulator(control_dt_s=0.0)
