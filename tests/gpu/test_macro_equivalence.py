"""Engine equivalence: the macro fast path must reproduce the stepped oracle.

Every policy, run on the same trace through both engines, must produce
the same ``SimulationResult`` — integer aggregates, event counts, event
instants, phase-time breakdowns, and timelines exactly; temperatures to
the documented 1e-6 °C tolerance. The suite covers cold runs (randomized
traces via hypothesis), warning-band oscillation on the sensor
hysteresis, temperature-phase walks, and the forced shutdown/recovery
path under both the three-phase and the conservative-shutdown overheat
policies.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import StaticFraction, make_policy
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SystemSimulator
from repro.hmc.config import HMC_2_0
from repro.hmc.dram_timing import TemperaturePhasePolicy
from repro.hmc.flow import HmcFlowModel
from repro.sim.trace import OpBatch, TraceCursor
from repro.thermal.cooling import COMMODITY_SERVER, LOW_END_ACTIVE, PASSIVE
from repro.thermal.model import HmcThermalModel
from repro.thermal.sensor import ThermalSensor

POLICY_NAMES = [
    "non-offloading",
    "naive-offloading",
    "coolpim-sw",
    "coolpim-hw",
    "ideal-thermal",
]

#: SimulationResult fields the engines must agree on bit-for-bit.
EXACT_FIELDS = [
    "runtime_s",
    "link_bytes",
    "data_bytes",
    "pim_ops",
    "host_atomics",
    "total_atomics",
    "thermal_warnings",
    "shutdowns",
    "phase_time_s",
    "package_energy_j",
    "fan_energy_j",
]

#: sim.* counters the engines must agree on bit-for-bit.
EXACT_COUNTERS = [
    "sim.epochs",
    "sim.control_steps",
    "sim.thermal_solver_steps",
    "sim.thermal_warnings",
    "sim.shutdowns",
    "sim.pim_ops",
    "sim.host_atomics",
    "sim.host_atomics_assigned",
]


def make_launch(batches, name="eq"):
    return KernelLaunch(
        name=name, trace=TraceCursor(batches), total_threads=4096
    )


def hot_launch(n_epochs=10, atomics=400_000):
    """A sustained trace that heats the stack under weak cooling."""
    return make_launch([
        OpBatch(reads=150_000, writes=80_000, atomics=atomics,
                compute_cycles=20_000, threads=4096, label=f"e{i}")
        for i in range(n_epochs)
    ])


def build_sim(engine, cooling=COMMODITY_SERVER, phase_policy=None):
    return SystemSimulator(
        flow=HmcFlowModel(HMC_2_0, phase_policy=phase_policy),
        thermal=HmcThermalModel(HMC_2_0, cooling=cooling),
        sensor=ThermalSensor(),
        engine=engine,
    )


def run_both(launch, policy, cooling=COMMODITY_SERVER, phase_policy=None):
    """Run ``launch`` through both engines; returns {engine: (result, stats)}.

    ``policy`` is a factory (name string or callable) so each engine gets
    a fresh, independent policy instance.
    """
    out = {}
    for engine in ("stepped", "macro"):
        sim = build_sim(engine, cooling=cooling, phase_policy=phase_policy)
        pol = make_policy(policy) if isinstance(policy, str) else policy()
        result = sim.run(launch, pol)
        out[engine] = (result, sim.stats.snapshot(), sim)
    return out


def assert_equivalent(out):
    rs, ss, sim_s = out["stepped"]
    rm, sm, sim_m = out["macro"]
    for field in EXACT_FIELDS:
        assert getattr(rm, field) == getattr(rs, field), field
    assert rm.peak_dram_temp_c == pytest.approx(
        rs.peak_dram_temp_c, abs=1e-6
    )
    for key in EXACT_COUNTERS:
        assert sm.get(key) == ss.get(key), key

    # Timelines: same grid points, identical rates/fractions, temps
    # within tolerance.
    assert len(rm.timeline) == len(rs.timeline)
    for (ts, cs, prs, fs), (tm, cm, prm, fm) in zip(rs.timeline, rm.timeline):
        assert tm == ts
        assert prm == prs
        assert fm == fs
        assert cm == pytest.approx(cs, abs=1e-6)

    # Work conservation: every atomic is either offloaded or assigned to
    # the host pipeline (the satellite ledger closes the sub-0.5 residual
    # leak the drained check used to drop).
    for res, stats in ((rs, ss), (rm, sm)):
        assert res.pim_ops + stats["sim.host_atomics_assigned"] == (
            res.total_atomics
        )

    # Fixed-grid timeline: each sample is the first step-end at or past
    # its grid point, so consecutive samples occupy strictly later cells.
    tl_dt = sim_s.timeline_dt_s
    for res in (rs, rm):
        for (t_prev, *_), (t_next, *_) in zip(res.timeline, res.timeline[1:]):
            cell_end = (math.floor(t_prev / tl_dt) + 1.0) * tl_dt
            assert t_next >= cell_end - 1e-12


random_batches = st.lists(
    st.builds(
        OpBatch,
        reads=st.integers(0, 60_000),
        writes=st.integers(0, 40_000),
        atomics=st.integers(0, 60_000),
        compute_cycles=st.integers(0, 10_000),
        threads=st.just(4096),
        divergent_warp_ratio=st.floats(0.0, 0.9),
    ),
    min_size=1,
    max_size=4,
)


@pytest.mark.parametrize("policy", POLICY_NAMES)
@settings(max_examples=10, deadline=None)
@given(batches=random_batches)
def test_engines_agree_on_random_traces(policy, batches):
    assert_equivalent(run_both(make_launch(batches), policy))


@settings(max_examples=10, deadline=None)
@given(batches=random_batches, fraction=st.floats(0.0, 1.0))
def test_engines_agree_for_static_fraction(batches, fraction):
    assert_equivalent(
        run_both(make_launch(batches), lambda: StaticFraction(fraction))
    )


class TestHotPaths:
    """Warning oscillation, phase walks, and shutdown/recovery."""

    @pytest.mark.parametrize("policy", ["coolpim-sw", "coolpim-hw"])
    def test_warning_band_oscillation(self, policy):
        """Low-end cooling rides the 85/83 °C hysteresis band: dozens of
        warning deliveries, sensor flips, and NORMAL↔EXTENDED↔CRITICAL
        phase crossings."""
        out = run_both(hot_launch(), policy, cooling=LOW_END_ACTIVE)
        assert out["stepped"][0].thermal_warnings > 10
        assert_equivalent(out)

    @pytest.mark.parametrize("policy", ["naive-offloading", "coolpim-sw"])
    def test_shutdown_and_recovery(self, policy):
        """Passive cooling drives the die past 105 °C: the run must take
        the shutdown branch, cool down, and finish the trace after
        recovery — identically in both engines."""
        out = run_both(hot_launch(n_epochs=6), policy, cooling=PASSIVE)
        assert out["stepped"][0].shutdowns >= 1
        assert_equivalent(out)

    def test_conservative_shutdown_policy(self):
        """The Sec. III-C all-or-nothing prototype policy: full speed to
        the 95 °C kill switch, then a hard stop."""
        out = run_both(
            hot_launch(n_epochs=6),
            "naive-offloading",
            cooling=PASSIVE,
            phase_policy=TemperaturePhasePolicy(conservative_shutdown=True),
        )
        assert out["stepped"][0].shutdowns >= 1
        assert_equivalent(out)

    def test_equivalence_survives_live_telemetry(self):
        """Bit-equality with a telemetry sink attached to both engines:
        the macro engine emits only at commit boundaries, so observation
        must not perturb a single aggregate — and both engines must
        actually produce samples."""
        from repro.telemetry.live import RunTelemetrySink, run_telemetry

        out = {}
        samples = {}
        for engine in ("stepped", "macro"):
            collected = []
            sink = RunTelemetrySink(emit=collected.append, max_samples=32)
            sim = build_sim(engine, cooling=LOW_END_ACTIVE)
            with run_telemetry(sink):
                result = sim.run(hot_launch(), make_policy("coolpim-hw"))
            out[engine] = (result, sim.stats.snapshot(), sim)
            samples[engine] = collected
        assert_equivalent(out)
        for engine, collected in samples.items():
            assert collected, f"{engine} emitted no telemetry"
            assert all(s["engine"] == engine for s in collected)
            times = [s["t_s"] for s in collected]
            assert times == sorted(times)
            assert all(0.0 <= s["progress"] <= 1.0 for s in collected)

    def test_results_identical_with_and_without_sink(self):
        """The observer effect check: attaching a sink must not change
        the stepped oracle's own results either."""
        from repro.telemetry.live import RunTelemetrySink, run_telemetry

        plain = build_sim("stepped", cooling=LOW_END_ACTIVE)
        r_plain = plain.run(hot_launch(), make_policy("coolpim-sw"))
        observed = build_sim("stepped", cooling=LOW_END_ACTIVE)
        sink = RunTelemetrySink(emit=lambda s: None, max_samples=16)
        with run_telemetry(sink):
            r_obs = observed.run(hot_launch(), make_policy("coolpim-sw"))
        for field in EXACT_FIELDS:
            assert getattr(r_obs, field) == getattr(r_plain, field), field
        assert r_obs.peak_dram_temp_c == r_plain.peak_dram_temp_c
        assert r_obs.timeline == r_plain.timeline

    def test_warnings_fire_at_identical_instants(self):
        """Beyond equal counts: the traced warning instants must match
        step-for-step (the sensor only flips at its 100 µs samples)."""
        from repro.obs.tracer import Tracer, set_tracer

        events = {}
        for engine in ("stepped", "macro"):
            previous = set_tracer(Tracer(enabled=True))
            try:
                sim = build_sim(engine, cooling=LOW_END_ACTIVE)
                sim.run(hot_launch(), make_policy("coolpim-hw"))
                events[engine] = [
                    r["ts"]
                    for r in set_tracer(previous).records
                    if r["name"] == "sim.thermal_warning"
                ]
            finally:
                set_tracer(previous)
        assert events["macro"] == events["stepped"]
        assert len(events["macro"]) > 10
