"""GPU configuration: Table IV values and derived occupancy."""

import pytest

from repro.gpu.config import GPU_DEFAULT, GpuConfig


class TestTableIV:
    def test_sm_and_warp(self):
        assert GPU_DEFAULT.num_sms == 16
        assert GPU_DEFAULT.threads_per_warp == 32
        assert GPU_DEFAULT.freq_ghz == 1.4

    def test_caches(self):
        assert GPU_DEFAULT.l1d_kb == 16
        assert GPU_DEFAULT.l2_kb == 1024
        assert GPU_DEFAULT.l2_ways == 16


class TestDerived:
    def test_warps_per_block(self):
        assert GPU_DEFAULT.warps_per_block == 8  # 256 threads / 32

    def test_max_concurrent_blocks(self):
        # min(8 blocks, 48 warps / 8 warps-per-block = 6) per SM x 16 SMs
        assert GPU_DEFAULT.max_concurrent_blocks == 96

    def test_max_concurrent_warps(self):
        assert GPU_DEFAULT.max_concurrent_warps == 96 * 8

    def test_issue_rate(self):
        assert GPU_DEFAULT.peak_warp_instructions_per_ns == pytest.approx(
            16 * 2 * 1.4
        )


class TestValidation:
    def test_block_must_be_warp_multiple(self):
        with pytest.raises(ValueError):
            GpuConfig(threads_per_block=100)

    def test_positive_geometry(self):
        with pytest.raises(ValueError):
            GpuConfig(num_sms=0)

    def test_atomic_throughput_positive(self):
        with pytest.raises(ValueError):
            GpuConfig(host_atomic_ops_per_ns=0.0)
