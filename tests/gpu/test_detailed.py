"""Detailed (transaction-level) co-simulation."""

import pytest

from repro.core.policies import IdealThermal, NaiveOffloading, NonOffloading
from repro.gpu.detailed import DetailedSimulator
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SystemSimulator
from repro.sim.trace import OpBatch, TraceCursor


def launch_of(batches):
    return KernelLaunch(name="detailed-test", trace=TraceCursor(batches),
                        total_threads=4096)


def small_batches(n=3, reads=800, writes=500, atomics=600):
    return [
        OpBatch(reads=reads, writes=writes, atomics=atomics, threads=4096,
                label=f"e{i}")
        for i in range(n)
    ]


class TestBasics:
    def test_runs_and_accounts(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), NaiveOffloading())
        assert res.transactions > 0
        assert res.pim_ops > 0
        assert res.runtime_s > 0
        assert res.mean_latency_ns > 0
        assert res.link_flits > 0

    def test_non_offloading_issues_no_pim(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), NonOffloading())
        assert res.pim_ops == 0
        assert res.host_atomics > 0

    def test_offloading_moves_fewer_flits(self):
        naive = DetailedSimulator(seed=2).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        base = DetailedSimulator(seed=2).run(
            launch_of(small_batches()), NonOffloading()
        )
        assert naive.link_flits < base.link_flits

    def test_max_transactions_cap(self):
        sim = DetailedSimulator(seed=1, max_transactions=100)
        res = sim.run(launch_of(small_batches(n=10)), NaiveOffloading())
        assert res.transactions == 100

    def test_deterministic_for_seed(self):
        r1 = DetailedSimulator(seed=9).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        r2 = DetailedSimulator(seed=9).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        assert r1.runtime_s == pytest.approx(r2.runtime_s)
        assert r1.link_flits == r2.link_flits

    def test_ideal_thermal_stays_cold(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), IdealThermal())
        assert res.peak_dram_temp_c <= sim.thermal.ambient_c + 1e-6
        assert res.thermal_warnings == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DetailedSimulator(thermal_update_txns=0)


class TestCrossFidelity:
    def test_detailed_agrees_with_fluid_on_runtime(self):
        """The two fidelity levels must agree on bulk runtime for a
        well-balanced trace. Epochs are sized so the event-level model's
        bank-conflict tail (real queueing the fluid model abstracts away)
        amortizes below the tolerance."""
        batches = small_batches(n=2, reads=8000, writes=8000, atomics=0)
        launch = launch_of(batches)

        detailed = DetailedSimulator(seed=3, max_transactions=40_000).run(
            launch, NonOffloading()
        )
        fluid = SystemSimulator().run(launch, NonOffloading())
        assert detailed.runtime_s == pytest.approx(fluid.runtime_s, rel=0.35)

    def test_small_epochs_pay_a_queueing_tail(self):
        """Documented divergence: tiny epochs leave the event-level model
        dominated by per-epoch bank-conflict tails, so it runs slower
        than the fluid estimate."""
        batches = small_batches(n=4, reads=400, writes=400, atomics=0)
        launch = launch_of(batches)
        detailed = DetailedSimulator(seed=3).run(launch, NonOffloading())
        fluid = SystemSimulator().run(launch, NonOffloading())
        assert detailed.runtime_s > 1.3 * fluid.runtime_s

    def test_thermal_trace_recorded(self):
        sim = DetailedSimulator(seed=1, thermal_update_txns=64)
        res = sim.run(launch_of(small_batches()), NaiveOffloading())
        assert len(res.thermal_trace) >= 2
        times = [t for t, _ in res.thermal_trace]
        assert times == sorted(times)


class TestEngines:
    """The batched engine against the scalar event oracle."""

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            DetailedSimulator(engine="fast")

    def test_result_reports_engine_and_bandwidth(self):
        for engine in ("batched", "event"):
            res = DetailedSimulator(seed=1, engine=engine).run(
                launch_of(small_batches()), NaiveOffloading()
            )
            assert res.engine == engine
            assert res.ext_bandwidth_gbs > 0
            # flits * 16 B / runtime, in GB/s (ns cancels the 1e9).
            expected = res.link_flits * 16 / (res.runtime_s * 1e9)
            assert res.ext_bandwidth_gbs == pytest.approx(expected)

    @pytest.mark.parametrize(
        "policy_cls", [NaiveOffloading, NonOffloading, IdealThermal]
    )
    def test_engines_agree_exactly(self, policy_cls):
        """Same seed, same trace: every result field and the thermal
        trace must match bit for bit across engines."""
        results = {}
        for engine in ("batched", "event"):
            results[engine] = DetailedSimulator(
                seed=7, engine=engine, thermal_update_txns=128
            ).run(launch_of(small_batches()), policy_cls())
        batched, event = results["batched"], results["event"]
        assert batched.runtime_s == event.runtime_s
        assert batched.transactions == event.transactions
        assert batched.pim_ops == event.pim_ops
        assert batched.host_atomics == event.host_atomics
        assert batched.mean_latency_ns == event.mean_latency_ns
        assert batched.link_flits == event.link_flits
        assert batched.ext_bandwidth_gbs == event.ext_bandwidth_gbs
        assert batched.peak_dram_temp_c == event.peak_dram_temp_c
        assert batched.thermal_warnings == event.thermal_warnings
        assert batched.thermal_trace == event.thermal_trace

    @pytest.mark.parametrize("engine", ["batched", "event"])
    def test_truncation_counts_submitted_host_atomics(self, engine):
        """A mid-epoch max_transactions cut must count the host atomics
        actually submitted, not the epoch's demanded total."""
        batches = [OpBatch(reads=0, writes=0, atomics=400, threads=4096,
                           label="atomic-heavy")]
        full = DetailedSimulator(seed=5, engine=engine).run(
            launch_of(batches), NonOffloading()
        )
        # Host atomics expand to read+write pairs; cut half way through.
        cap = full.transactions // 2
        truncated = DetailedSimulator(
            seed=5, engine=engine, max_transactions=cap
        ).run(launch_of(batches), NonOffloading())
        assert truncated.transactions == cap
        assert truncated.host_atomics < full.host_atomics
        # Submitted member transactions, in atomic pairs.
        assert truncated.host_atomics == pytest.approx(cap / 2, abs=1)

    def test_batch_size_histogram_recorded(self):
        sim = DetailedSimulator(seed=1)
        sim.run(launch_of(small_batches()), NaiveOffloading())
        hist = sim.stats.scoped("detailed").histogram(
            "epoch_batch_txns", 0.0, 65536.0, 64
        )
        assert hist.count == len(small_batches())
