"""Detailed (transaction-level) co-simulation."""

import pytest

from repro.core.policies import IdealThermal, NaiveOffloading, NonOffloading
from repro.gpu.detailed import DetailedSimulator
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SystemSimulator
from repro.sim.trace import OpBatch, TraceCursor


def launch_of(batches):
    return KernelLaunch(name="detailed-test", trace=TraceCursor(batches),
                        total_threads=4096)


def small_batches(n=3, reads=800, writes=500, atomics=600):
    return [
        OpBatch(reads=reads, writes=writes, atomics=atomics, threads=4096,
                label=f"e{i}")
        for i in range(n)
    ]


class TestBasics:
    def test_runs_and_accounts(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), NaiveOffloading())
        assert res.transactions > 0
        assert res.pim_ops > 0
        assert res.runtime_s > 0
        assert res.mean_latency_ns > 0
        assert res.link_flits > 0

    def test_non_offloading_issues_no_pim(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), NonOffloading())
        assert res.pim_ops == 0
        assert res.host_atomics > 0

    def test_offloading_moves_fewer_flits(self):
        naive = DetailedSimulator(seed=2).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        base = DetailedSimulator(seed=2).run(
            launch_of(small_batches()), NonOffloading()
        )
        assert naive.link_flits < base.link_flits

    def test_max_transactions_cap(self):
        sim = DetailedSimulator(seed=1, max_transactions=100)
        res = sim.run(launch_of(small_batches(n=10)), NaiveOffloading())
        assert res.transactions == 100

    def test_deterministic_for_seed(self):
        r1 = DetailedSimulator(seed=9).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        r2 = DetailedSimulator(seed=9).run(
            launch_of(small_batches()), NaiveOffloading()
        )
        assert r1.runtime_s == pytest.approx(r2.runtime_s)
        assert r1.link_flits == r2.link_flits

    def test_ideal_thermal_stays_cold(self):
        sim = DetailedSimulator(seed=1)
        res = sim.run(launch_of(small_batches()), IdealThermal())
        assert res.peak_dram_temp_c <= sim.thermal.ambient_c + 1e-6
        assert res.thermal_warnings == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DetailedSimulator(thermal_update_txns=0)


class TestCrossFidelity:
    def test_detailed_agrees_with_fluid_on_runtime(self):
        """The two fidelity levels must agree on bulk runtime for a
        well-balanced trace. Epochs are sized so the event-level model's
        bank-conflict tail (real queueing the fluid model abstracts away)
        amortizes below the tolerance."""
        batches = small_batches(n=2, reads=8000, writes=8000, atomics=0)
        launch = launch_of(batches)

        detailed = DetailedSimulator(seed=3, max_transactions=40_000).run(
            launch, NonOffloading()
        )
        fluid = SystemSimulator().run(launch, NonOffloading())
        assert detailed.runtime_s == pytest.approx(fluid.runtime_s, rel=0.35)

    def test_small_epochs_pay_a_queueing_tail(self):
        """Documented divergence: tiny epochs leave the event-level model
        dominated by per-epoch bank-conflict tails, so it runs slower
        than the fluid estimate."""
        batches = small_batches(n=4, reads=400, writes=400, atomics=0)
        launch = launch_of(batches)
        detailed = DetailedSimulator(seed=3).run(launch, NonOffloading())
        fluid = SystemSimulator().run(launch, NonOffloading())
        assert detailed.runtime_s > 1.3 * fluid.runtime_s

    def test_thermal_trace_recorded(self):
        sim = DetailedSimulator(seed=1, thermal_update_txns=64)
        res = sim.run(launch_of(small_batches()), NaiveOffloading())
        assert len(res.thermal_trace) >= 2
        times = [t for t, _ in res.thermal_trace]
        assert times == sorted(times)
