"""Property-based tests on the full co-simulation (hypothesis).

Small randomized traces through the real pipeline: conservation,
monotonicity, and thermal-exemption invariants must hold for *any* trace,
not just the calibrated workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import IdealThermal, NaiveOffloading, NonOffloading, StaticFraction
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SystemSimulator
from repro.sim.trace import OpBatch, TraceCursor


def make_launch(batches):
    return KernelLaunch(
        name="prop", trace=TraceCursor(batches), total_threads=2048
    )


small_batches = st.lists(
    st.builds(
        OpBatch,
        reads=st.integers(0, 20_000),
        writes=st.integers(0, 20_000),
        atomics=st.integers(0, 20_000),
        compute_cycles=st.integers(0, 5_000),
        threads=st.just(2048),
        divergent_warp_ratio=st.floats(0.0, 0.9),
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(small_batches)
def test_atomics_conserved_across_policies(batches):
    launch = make_launch(batches)
    total = sum(b.atomics for b in batches)
    for policy in (NonOffloading(), NaiveOffloading(), IdealThermal()):
        res = SystemSimulator().run(launch, policy)
        assert res.total_atomics == total
        # served = offloaded + host (host side is coalescing-scaled, so
        # only the offloaded count is exactly conserved)
        assert res.pim_ops <= total


@settings(max_examples=25, deadline=None)
@given(small_batches)
def test_runtime_non_negative_and_finite(batches):
    launch = make_launch(batches)
    res = SystemSimulator().run(launch, NaiveOffloading())
    assert res.runtime_s >= 0.0
    assert res.runtime_s < 10.0  # tiny traces finish in well under seconds
    assert res.package_energy_j >= 0.0


@settings(max_examples=15, deadline=None)
@given(
    small_batches,
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
)
def test_offloading_monotone_under_ideal_thermal(batches, f1, f2):
    """With thermal effects excluded, more offloading is never slower
    (it relieves both the link and the host-atomic ceiling)."""
    launch = make_launch(batches)
    lo, hi = min(f1, f2), max(f1, f2)

    class ExemptFraction(StaticFraction):
        thermal_exempt = True

    t_lo = SystemSimulator().run(launch, ExemptFraction(lo)).runtime_s
    t_hi = SystemSimulator().run(launch, ExemptFraction(hi)).runtime_s
    assert t_hi <= t_lo * 1.001 + 1e-12


@settings(max_examples=20, deadline=None)
@given(small_batches, st.floats(0.0, 1.0))
def test_offload_fraction_tracks_policy(batches, fraction):
    launch = make_launch(batches)
    res = SystemSimulator().run(launch, StaticFraction(fraction))
    if res.total_atomics > 100:
        assert res.offload_fraction == pytest.approx(fraction, abs=0.05)


@settings(max_examples=20, deadline=None)
@given(small_batches)
def test_ideal_thermal_never_warms_or_warns(batches):
    launch = make_launch(batches)
    sim = SystemSimulator()
    res = sim.run(launch, IdealThermal())
    assert res.peak_dram_temp_c <= sim.thermal.ambient_c + 1e-9
    assert res.thermal_warnings == 0
    assert res.fan_energy_j == 0.0


class TestStaticFraction:
    def test_validation(self):
        with pytest.raises(ValueError):
            StaticFraction(1.5)

    def test_name_encodes_fraction(self):
        assert StaticFraction(0.25).name == "static-0.25"
