"""Event engine: ordering, cancellation, run-until, tickers."""

import pytest

from repro.sim.engine import Event, EventEngine, Ticker


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = EventEngine()
        out = []
        eng.schedule(5.0, lambda: out.append("late"))
        eng.schedule(1.0, lambda: out.append("early"))
        eng.schedule(3.0, lambda: out.append("mid"))
        eng.run()
        assert out == ["early", "mid", "late"]

    def test_fifo_among_simultaneous_events(self):
        eng = EventEngine()
        out = []
        for i in range(10):
            eng.schedule(2.0, lambda i=i: out.append(i))
        eng.run()
        assert out == list(range(10))

    def test_priority_breaks_ties(self):
        eng = EventEngine()
        out = []
        eng.schedule(1.0, lambda: out.append("low"), priority=5)
        eng.schedule(1.0, lambda: out.append("high"), priority=0)
        eng.run()
        assert out == ["high", "low"]

    def test_now_advances_to_event_time(self):
        eng = EventEngine()
        seen = []
        eng.schedule(7.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [7.5]
        assert eng.now == 7.5

    def test_schedule_in_past_raises(self):
        eng = EventEngine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(1.0, lambda: None)

    def test_schedule_after_uses_relative_delay(self):
        eng = EventEngine()
        times = []
        eng.schedule(2.0, lambda: eng.schedule_after(3.0, lambda: times.append(eng.now)))
        eng.run()
        assert times == [5.0]

    def test_negative_delay_raises(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            eng.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        eng = EventEngine()
        out = []
        def chain(n):
            out.append(n)
            if n < 5:
                eng.schedule_after(1.0, lambda: chain(n + 1))
        eng.schedule(0.0, lambda: chain(0))
        eng.run()
        assert out == [0, 1, 2, 3, 4, 5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = EventEngine()
        out = []
        ev = eng.schedule(1.0, lambda: out.append("x"))
        ev.cancel()
        eng.run()
        assert out == []

    def test_len_excludes_cancelled(self):
        eng = EventEngine()
        ev1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert len(eng) == 2
        ev1.cancel()
        assert len(eng) == 1

    def test_peek_time_skips_cancelled(self):
        eng = EventEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(4.0, lambda: None)
        ev.cancel()
        assert eng.peek_time() == 4.0


class TestLiveCounterIntegrity:
    """Regression: stray cancel() calls must never corrupt len(engine)."""

    def test_cancel_after_fire_does_not_drift_negative(self):
        eng = EventEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.run()
        assert len(eng) == 0
        ev.cancel()
        assert len(eng) == 0

    def test_cancel_fired_event_does_not_affect_later_events(self):
        eng = EventEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.run()
        ev.cancel()
        eng.schedule(2.0, lambda: None)
        assert len(eng) == 1

    def test_cancel_orphaned_by_reset_is_noop(self):
        eng = EventEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.reset()
        ev.cancel()
        assert len(eng) == 0
        eng.schedule(1.0, lambda: None)
        ev.cancel()  # still a no-op against the new population
        assert len(eng) == 1

    def test_double_cancel_decrements_once(self):
        eng = EventEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert len(eng) == 1

    def test_cancel_inside_own_callback_is_noop(self):
        eng = EventEngine()
        holder = {}
        holder["ev"] = eng.schedule(1.0, lambda: holder["ev"].cancel())
        eng.schedule(2.0, lambda: None)
        eng.step()
        assert len(eng) == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        eng = EventEngine()
        out = []
        eng.schedule(1.0, lambda: out.append(1))
        eng.schedule(10.0, lambda: out.append(10))
        count = eng.run(until=5.0)
        assert count == 1 and out == [1]
        assert eng.now == 5.0

    def test_run_until_advances_clock_even_with_no_events(self):
        eng = EventEngine()
        eng.run(until=42.0)
        assert eng.now == 42.0

    def test_max_events_bound(self):
        eng = EventEngine()
        out = []
        for i in range(5):
            eng.schedule(float(i), lambda i=i: out.append(i))
        assert eng.run(max_events=3) == 3
        assert out == [0, 1, 2]

    def test_max_events_with_pending_work_does_not_advance_to_until(self):
        # Regression: a run truncated by max_events with events still
        # pending inside [now, until] must not skip ahead to until.
        eng = EventEngine()
        for i in range(1, 8):
            eng.schedule(float(i), lambda: None)
        count = eng.run(until=10.0, max_events=3)
        assert count == 3
        assert eng.now == 3.0

    def test_max_events_advances_to_until_when_interval_drained(self):
        # Regression: budget exhausted exactly on the last event inside
        # the window — the interval is fully simulated, so now == until.
        eng = EventEngine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.schedule(20.0, lambda: None)
        count = eng.run(until=10.0, max_events=2)
        assert count == 2
        assert eng.now == 10.0
        assert len(eng) == 1

    def test_truncated_run_resumes_without_skipping_time(self):
        eng = EventEngine()
        fired = []
        for i in range(1, 6):
            eng.schedule(float(i), lambda i=i: fired.append(i))
        eng.run(until=10.0, max_events=2)
        eng.run(until=10.0)
        assert fired == [1, 2, 3, 4, 5]
        assert eng.now == 10.0

    def test_step_returns_false_on_empty(self):
        eng = EventEngine()
        assert eng.step() is False

    def test_reset_clears_state(self):
        eng = EventEngine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0 and len(eng) == 0


class TestTicker:
    def test_fires_at_fixed_period(self):
        eng = EventEngine()
        times = []
        Ticker(eng, period=2.0, callback=times.append)
        eng.run(until=9.0)
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_stop_halts_firings(self):
        eng = EventEngine()
        times = []
        ticker = Ticker(eng, period=1.0, callback=times.append)
        eng.run(until=3.5)
        ticker.stop()
        eng.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            Ticker(EventEngine(), period=0.0, callback=lambda t: None)

    def test_explicit_start_time(self):
        eng = EventEngine()
        times = []
        Ticker(eng, period=5.0, callback=times.append, start=1.0)
        eng.run(until=12.0)
        assert times == [1.0, 6.0, 11.0]
