"""Clock: conversions and frequency derating."""

import pytest

from repro.sim.clock import Clock


class TestClock:
    def test_period_is_inverse_frequency(self):
        clk = Clock(2.0)
        assert clk.period_ns == pytest.approx(0.5)

    def test_cycles_roundtrip(self):
        clk = Clock(1.4)
        ns = clk.cycles_to_ns(1400)
        assert ns == pytest.approx(1000.0)
        assert clk.ns_to_cycles(ns) == pytest.approx(1400)

    def test_derating_stretches_period(self):
        clk = Clock(1.0)
        clk.set_scale(0.8)
        assert clk.effective_ghz == pytest.approx(0.8)
        assert clk.period_ns == pytest.approx(1.25)
        assert clk.nominal_ghz == 1.0

    def test_scale_bounds(self):
        clk = Clock(1.0)
        with pytest.raises(ValueError):
            clk.set_scale(0.0)
        with pytest.raises(ValueError):
            clk.set_scale(1.5)
        clk.set_scale(1.0)  # boundary ok

    def test_ceil_cycles_rounds_up(self):
        clk = Clock(1.0)
        assert clk.ceil_cycles(2.5) == 3
        assert clk.ceil_cycles(3.0) == 3

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            Clock(0.0)
        with pytest.raises(ValueError):
            Clock(-1.0)
