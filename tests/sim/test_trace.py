"""Operation batches and trace cursors."""

import pytest

from repro.sim.trace import OpBatch, TraceCursor, merge_batches


class TestOpBatch:
    def test_validation_rejects_negative(self):
        with pytest.raises(ValueError):
            OpBatch(reads=-1, writes=0, atomics=0)

    def test_with_return_bounded_by_atomics(self):
        with pytest.raises(ValueError):
            OpBatch(reads=0, writes=0, atomics=2, atomics_with_return=3)

    def test_divergence_bounds(self):
        with pytest.raises(ValueError):
            OpBatch(reads=0, writes=0, atomics=0, divergent_warp_ratio=1.5)

    def test_total_ops(self):
        b = OpBatch(reads=3, writes=2, atomics=5)
        assert b.total_ops == 10

    def test_scaled_rounds_counts(self):
        b = OpBatch(reads=10, writes=4, atomics=7, atomics_with_return=3,
                    compute_cycles=100, threads=64)
        s = b.scaled(0.5)
        assert (s.reads, s.writes, s.atomics) == (5, 2, 4)
        assert s.atomics_with_return == 2
        assert s.compute_cycles == 50

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            OpBatch(1, 1, 1).scaled(-0.5)

    def test_frozen(self):
        b = OpBatch(1, 1, 1)
        with pytest.raises(Exception):
            b.reads = 5


class TestMerge:
    def test_merge_sums_counts(self):
        a = OpBatch(reads=1, writes=2, atomics=3, compute_cycles=10, threads=32)
        b = OpBatch(reads=10, writes=20, atomics=30, compute_cycles=5, threads=32)
        m = merge_batches([a, b])
        assert (m.reads, m.writes, m.atomics) == (11, 22, 33)
        assert m.compute_cycles == 15
        assert m.threads == 64

    def test_merge_weights_divergence_by_threads(self):
        a = OpBatch(0, 0, 0, threads=10, divergent_warp_ratio=1.0)
        b = OpBatch(0, 0, 0, threads=30, divergent_warp_ratio=0.0)
        assert merge_batches([a, b]).divergent_warp_ratio == pytest.approx(0.25)

    def test_merge_empty(self):
        m = merge_batches([])
        assert m.total_ops == 0


class TestCursor:
    def _cursor(self):
        return TraceCursor(OpBatch(reads=i, writes=0, atomics=0) for i in range(3))

    def test_iterates_in_order(self):
        cur = self._cursor()
        assert [b.reads for b in cur] == [0, 1, 2]

    def test_next_until_exhausted(self):
        cur = self._cursor()
        seen = []
        while not cur.exhausted:
            seen.append(cur.next().reads)
        assert seen == [0, 1, 2]
        assert cur.next() is None

    def test_rewind_replays(self):
        cur = self._cursor()
        cur.next()
        cur.next()
        cur.rewind()
        assert cur.position == 0
        assert cur.next().reads == 0

    def test_totals_ignores_position(self):
        cur = self._cursor()
        cur.next()
        assert cur.totals().reads == 3

    def test_len(self):
        assert len(self._cursor()) == 3


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        batches = [
            OpBatch(reads=i * 10, writes=i, atomics=i * 3,
                    atomics_with_return=i, compute_cycles=i * 7,
                    threads=64, divergent_warp_ratio=0.25,
                    label=f"epoch-{i}")
            for i in range(1, 6)
        ]
        cur = TraceCursor(batches)
        path = tmp_path / "trace.npz"
        cur.save(path)
        loaded = TraceCursor.load(path)
        assert len(loaded) == len(cur)
        for a, b in zip(cur, loaded):
            assert a == b

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        TraceCursor([]).save(path)
        assert len(TraceCursor.load(path)) == 0

    def test_archive_contains_exactly_the_field_arrays(self, tmp_path):
        # Regression: ``savez_compressed(path, allow_pickle=True, **arrays)``
        # silently saved a bogus array named "allow_pickle" (every kwarg
        # becomes an archive member), polluting the archive.
        import numpy as np

        path = tmp_path / "trace.npz"
        TraceCursor([OpBatch(reads=1, writes=2, atomics=3, label="x")]).save(path)
        with np.load(path, allow_pickle=False) as archive:
            assert sorted(archive.files) == sorted([
                "reads", "writes", "atomics", "atomics_with_return",
                "compute_cycles", "threads", "divergence", "labels",
            ])

    def test_labels_load_without_pickle(self, tmp_path):
        # str_ dtype arrays need no pickling, so a fresh archive must be
        # readable even with allow_pickle=False.
        path = tmp_path / "trace.npz"
        TraceCursor([OpBatch(1, 1, 1, label="epoch-0")]).save(path)
        loaded = TraceCursor.load(path)
        assert loaded.next().label == "epoch-0"
