"""Statistics: counters, running means, time-weighted stats, histograms."""

import math

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    RunningMean,
    StatRegistry,
    TimeWeightedStat,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(4.0)
        assert c.value == 5.0

    def test_reset(self):
        c = Counter()
        c.add(3)
        c.reset()
        assert c.value == 0.0


class TestRunningMean:
    def test_mean_and_extremes(self):
        rm = RunningMean()
        for x in [1.0, 2.0, 3.0, 4.0]:
            rm.add(x)
        assert rm.mean == pytest.approx(2.5)
        assert rm.min == 1.0 and rm.max == 4.0

    def test_variance_matches_sample_variance(self):
        rm = RunningMean()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            rm.add(x)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert rm.variance == pytest.approx(var)
        assert rm.stddev == pytest.approx(math.sqrt(var))

    def test_empty_mean_is_zero(self):
        assert RunningMean().mean == 0.0
        assert RunningMean().variance == 0.0


class TestTimeWeighted:
    def test_weights_levels_by_duration(self):
        tw = TimeWeightedStat(initial=10.0, start_time=0.0)
        tw.update(20.0, now=1.0)   # 10 held for 1s
        tw.update(0.0, now=4.0)    # 20 held for 3s
        # mean over [0,4] = (10*1 + 20*3)/4 = 17.5
        assert tw.mean() == pytest.approx(17.5)

    def test_mean_extends_to_query_time(self):
        tw = TimeWeightedStat(initial=2.0)
        tw.update(4.0, now=2.0)
        assert tw.mean(now=4.0) == pytest.approx((2 * 2 + 4 * 2) / 4)

    def test_rejects_time_travel(self):
        tw = TimeWeightedStat()
        tw.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            tw.update(2.0, now=4.0)
        with pytest.raises(ValueError):
            tw.mean(now=1.0)

    def test_tracks_extremes(self):
        tw = TimeWeightedStat(initial=5.0)
        tw.update(9.0, now=1.0)
        tw.update(-1.0, now=2.0)
        assert tw.min == -1.0 and tw.max == 9.0

    def test_elapsed_accumulates_held_time(self):
        tw = TimeWeightedStat(initial=1.0, start_time=0.0)
        tw.update(2.0, now=3.0)
        tw.update(0.0, now=5.0)
        assert tw.elapsed == pytest.approx(5.0)

    def test_reset_restarts_the_clock(self):
        # A registry can outlive one simulation run; without reset the next
        # run's t=0 updates would look like time travel.
        tw = TimeWeightedStat(initial=0.0)
        tw.update(4.0, now=10.0)
        tw.reset()
        tw.update(2.0, now=1.0)  # would raise before reset
        assert tw.mean(now=2.0) == pytest.approx(1.0)
        assert tw.min == 0.0 and tw.max == 2.0

    def test_reset_with_new_initial(self):
        tw = TimeWeightedStat(initial=0.0)
        tw.update(9.0, now=1.0)
        tw.reset(initial=5.0)
        assert tw.value == 5.0 and tw.min == 5.0 and tw.max == 5.0


class TestHistogram:
    def test_bin_placement(self):
        h = Histogram("h", lo=0.0, hi=10.0, nbins=10)
        for x in [0.5, 1.5, 9.9]:
            h.add(x)
        assert h.bins[0] == 1 and h.bins[1] == 1 and h.bins[9] == 1

    def test_under_and_overflow(self):
        h = Histogram("h", 0.0, 1.0, 4)
        h.add(-0.1)
        h.add(1.0)  # hi is exclusive
        assert h.underflow == 1 and h.overflow == 1

    def test_mean(self):
        h = Histogram("h", 0.0, 10.0, 5)
        h.add(2.0)
        h.add(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_bin_edges(self):
        h = Histogram("h", 0.0, 1.0, 2)
        assert h.bin_edges() == pytest.approx([0.0, 0.5, 1.0])

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            Histogram("h", 1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram("h", 0.0, 1.0, 0)

    def test_reset_clears_all_buckets(self):
        h = Histogram("h", 0.0, 1.0, 4)
        h.add(-1.0)
        h.add(0.5)
        h.add(2.0)
        h.reset()
        assert h.count == 0 and h.total == 0.0
        assert h.underflow == 0 and h.overflow == 0
        assert h.bins == [0, 0, 0, 0]

    def test_percentile_uniform_fill(self):
        h = Histogram("h", 0.0, 10.0, 10)
        for i in range(100):
            h.add(i / 10.0)  # 0.0, 0.1, ..., 9.9 — 10 per bin
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(99) == pytest.approx(9.9)
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == pytest.approx(10.0)

    def test_percentile_underflow_maps_to_lo(self):
        h = Histogram("h", 0.0, 10.0, 10)
        h.add(-5.0)
        h.add(-3.0)
        h.add(5.0)
        assert h.percentile(10) == 0.0

    def test_percentile_overflow_maps_to_hi(self):
        h = Histogram("h", 0.0, 10.0, 10)
        h.add(5.0)
        h.add(50.0)
        assert h.percentile(99) == 10.0

    def test_percentile_empty_returns_none(self):
        h = Histogram("h", 0.0, 1.0, 2)
        assert h.percentile(50) is None
        assert h.percentile(0) is None
        h.add(0.5)
        assert h.percentile(50) is not None
        h.reset()
        assert h.percentile(99) is None

    def test_percentile_errors(self):
        h = Histogram("h", 0.0, 1.0, 2)
        h.add(0.5)
        with pytest.raises(ValueError, match="out of"):
            h.percentile(-1)
        with pytest.raises(ValueError, match="out of"):
            h.percentile(101)


class TestRegistry:
    def test_scoped_prefixing(self):
        reg = StatRegistry()
        vault = reg.scoped("hmc").scoped("vault0")
        c = vault.counter("reads")
        c.add(3)
        assert reg.get("hmc.vault0.reads") is c

    def test_get_or_create_idempotent(self):
        reg = StatRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = StatRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.running_mean("x")
        with pytest.raises(TypeError):
            reg.time_weighted("x")
        with pytest.raises(TypeError):
            reg.histogram("x", 0, 1, 2)

    def test_time_weighted_reregistration_same_params_ok(self):
        reg = StatRegistry()
        tw = reg.time_weighted("x", initial=2.0)
        assert reg.time_weighted("x", initial=2.0) is tw

    def test_time_weighted_conflicting_initial_raises(self):
        # Regression: a mismatched initial used to be silently ignored,
        # leaving the second caller with a stat biased by someone else's
        # starting level.
        reg = StatRegistry()
        reg.time_weighted("x", initial=1.0)
        with pytest.raises(ValueError, match="initial"):
            reg.time_weighted("x", initial=2.0)

    def test_histogram_reregistration_same_params_ok(self):
        reg = StatRegistry()
        h = reg.histogram("h", 0.0, 10.0, 5)
        assert reg.histogram("h", 0.0, 10.0, 5) is h

    def test_histogram_conflicting_bins_raise(self):
        # Regression: mismatched lo/hi/nbins were silently ignored, so
        # samples landed in someone else's binning.
        reg = StatRegistry()
        reg.histogram("h", 0.0, 10.0, 5)
        with pytest.raises(ValueError, match="bins"):
            reg.histogram("h", 0.0, 20.0, 5)
        with pytest.raises(ValueError, match="bins"):
            reg.histogram("h", 0.0, 10.0, 8)
        with pytest.raises(ValueError, match="bins"):
            reg.histogram("h", 1.0, 10.0, 5)

    def test_snapshot_flattens_scalars(self):
        reg = StatRegistry()
        reg.counter("c").add(2)
        reg.running_mean("m").add(4.0)
        snap = reg.snapshot()
        assert snap == {"c": 2.0, "m": 4.0}

    def test_structured_snapshot_types_every_stat(self):
        import json

        reg = StatRegistry()
        reg.counter("c").add(3)
        reg.running_mean("m").add(2.0)
        tw = reg.time_weighted("tw", initial=1.0)
        tw.update(3.0, now=2.0)
        h = reg.histogram("h", 0.0, 10.0, 10)
        h.add(5.0)
        snap = reg.snapshot(structured=True)
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["m"]["type"] == "mean" and snap["m"]["n"] == 1
        assert snap["tw"]["type"] == "time_weighted"
        assert snap["tw"]["mean"] == pytest.approx(1.0)
        assert snap["h"]["type"] == "histogram" and snap["h"]["count"] == 1
        assert snap["h"]["p50"] == pytest.approx(5.5)
        json.dumps(snap)  # must always be JSON-serializable

    def test_structured_snapshot_empty_stats_are_json_safe(self):
        import json

        reg = StatRegistry()
        reg.running_mean("m")  # min/max are ±inf internally
        reg.histogram("h", 0.0, 1.0, 2)
        snap = reg.snapshot(structured=True)
        assert snap["m"]["min"] is None and snap["m"]["max"] is None
        assert snap["h"]["p50"] is None
        json.dumps(snap)

    def test_flat_snapshot_unchanged_by_structured_mode(self):
        reg = StatRegistry()
        reg.counter("c").add(2)
        assert reg.snapshot() == {"c": 2.0}

    def test_items_filters_by_scope(self):
        reg = StatRegistry()
        reg.counter("top")
        sub = reg.scoped("sub")
        sub.counter("inner")
        names = [k for k, _ in sub.items()]
        assert names == ["sub.inner"]
