"""System co-simulator throughput: macro engine vs the stepped oracle.

Guards the tentpole win of the macro-stepping engine
(:mod:`repro.gpu.macro`) on a Fig. 10-style configuration — the pagerank
workload on the LDBC graph swept across the paper's policy matrix:

- ``test_macro_engine_speedup`` pins the macro engine at >=5x the stepped
  oracle across the policy sweep (interleaved best-of-N minima, so
  machine speed cancels), while re-asserting result equivalence on the
  headline aggregates.
- ``test_macro_steps_per_second_budget`` holds an absolute control-steps
  per second floor so the fast path cannot silently regress toward the
  oracle's throughput even if both get slower together.

Each run's measurements are appended to ``BENCH_simulator.json`` (written
to the working directory), giving CI a machine-readable trajectory of the
per-policy speedups.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.policies import make_policy
from repro.gpu.config import GPU_DEFAULT
from repro.gpu.simulator import SystemSimulator
from repro.graph.datasets import get_dataset
from repro.hmc.config import HMC_2_0
from repro.hmc.flow import HmcFlowModel
from repro.thermal.model import HmcThermalModel
from repro.thermal.sensor import ThermalSensor
from repro.workloads.registry import get_workload

#: The Fig. 10 policy matrix (thermally active configs carry the guard;
#: ideal-thermal runs too few quanta to time meaningfully).
POLICIES = [
    "non-offloading",
    "naive-offloading",
    "coolpim-sw",
    "coolpim-hw",
]

SPEEDUP_FLOOR = 5.0

#: Absolute budget: committed control quanta per wall-clock second across
#: the sweep. The stepped oracle manages ~2k/s on a development machine;
#: the macro engine ~15k/s. The floor leaves ~3x headroom for slow CI
#: hosts while still catching a fast path that decays toward the oracle.
MACRO_STEPS_PER_S_FLOOR = 5_000.0

ARTIFACT = Path("BENCH_simulator.json")


@pytest.fixture(scope="module")
def fig10_setup():
    """Prebuilt launch + warmed thermal caches, shared by every run.

    Trace generation and the one-time thermal operator/propagator
    assembly would otherwise dominate the short macro runs and hide the
    engine ratio being guarded.
    """
    graph = get_dataset("ldbc")
    workload = get_workload("pagerank", seed=0)
    launch = workload.launch(graph, GPU_DEFAULT)
    thermal = HmcThermalModel(HMC_2_0)
    cache = workload.cache_model(GPU_DEFAULT)

    def build(engine):
        return SystemSimulator(
            cache=cache,
            flow=HmcFlowModel(HMC_2_0),
            thermal=thermal,
            sensor=ThermalSensor(),
            engine=engine,
        )

    # Warm-up: populates the shared step-LU and reduced-propagator caches.
    build("macro").run(launch, make_policy("naive-offloading"))
    return launch, build


def _timed_run(build, launch, engine, policy):
    sim = build(engine)
    t0 = time.perf_counter()
    result = sim.run(launch, make_policy(policy))
    elapsed = time.perf_counter() - t0
    steps = sim.stats.snapshot()["sim.control_steps"]
    return elapsed, result, steps


def _sweep(build, launch, reps=3):
    """Interleaved best-of-``reps`` sweep; returns per-policy rows."""
    rows = {
        p: {"stepped_s": [], "macro_s": [], "steps": 0.0} for p in POLICIES
    }
    for _ in range(reps):
        for policy in POLICIES:
            row = rows[policy]
            t_s, r_s, _ = _timed_run(build, launch, "stepped", policy)
            t_m, r_m, steps = _timed_run(build, launch, "macro", policy)
            row["stepped_s"].append(t_s)
            row["macro_s"].append(t_m)
            row["steps"] = steps
            # Equivalence spot-check on the headline aggregates (the
            # full contract lives in tests/gpu/test_macro_equivalence).
            assert r_m.runtime_s == r_s.runtime_s, policy
            assert r_m.pim_ops == r_s.pim_ops, policy
            assert r_m.thermal_warnings == r_s.thermal_warnings, policy
            assert r_m.shutdowns == r_s.shutdowns, policy
            assert r_m.peak_dram_temp_c == pytest.approx(
                r_s.peak_dram_temp_c, abs=1e-6
            ), policy
    return {
        p: {
            "stepped_s": min(v["stepped_s"]),
            "macro_s": min(v["macro_s"]),
            "speedup": min(v["stepped_s"]) / min(v["macro_s"]),
            "control_steps": v["steps"],
        }
        for p, v in rows.items()
    }


def _emit(rows, aggregate_speedup, macro_steps_per_s):
    payload = {
        "benchmark": "simulator_macro_vs_stepped",
        "config": {"workload": "pagerank", "dataset": "ldbc",
                   "policies": POLICIES},
        "aggregate_speedup": aggregate_speedup,
        "macro_steps_per_s": macro_steps_per_s,
        "policies": rows,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_macro_engine_speedup(benchmark, fig10_setup):
    """Macro >=5x the stepped oracle across the Fig. 10 policy sweep."""
    launch, build = fig10_setup
    rows = _sweep(build, launch)

    stepped_total = sum(r["stepped_s"] for r in rows.values())
    macro_total = sum(r["macro_s"] for r in rows.values())
    aggregate = stepped_total / macro_total
    total_steps = sum(r["control_steps"] for r in rows.values())
    steps_per_s = total_steps / macro_total
    _emit(rows, aggregate, steps_per_s)

    # Anchor the pytest-benchmark table to the macro sweep itself.
    benchmark(lambda: [
        _timed_run(build, launch, "macro", p) for p in POLICIES
    ])

    per_policy = ", ".join(
        f"{p}={r['speedup']:.1f}x" for p, r in rows.items()
    )
    assert aggregate >= SPEEDUP_FLOOR, (
        f"macro engine only {aggregate:.1f}x faster over the Fig. 10 sweep "
        f"({per_policy})"
    )
    # Every thermally-coupled policy must individually benefit; the
    # warning-band configs commit shorter bursts, so their floor is lower.
    for policy, row in rows.items():
        assert row["speedup"] >= 2.0, (
            f"{policy}: macro only {row['speedup']:.1f}x"
        )


def test_macro_steps_per_second_budget(fig10_setup):
    """Absolute throughput floor for the macro engine."""
    launch, build = fig10_setup
    best = {p: 1e9 for p in POLICIES}
    steps = {}
    for _ in range(3):
        for policy in POLICIES:
            t_m, _, n = _timed_run(build, launch, "macro", policy)
            best[policy] = min(best[policy], t_m)
            steps[policy] = n
    rate = sum(steps.values()) / sum(best.values())
    assert rate >= MACRO_STEPS_PER_S_FLOOR, (
        f"macro engine at {rate:.0f} control steps/s "
        f"(floor {MACRO_STEPS_PER_S_FLOOR:.0f})"
    )
