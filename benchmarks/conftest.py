"""Benchmark configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
at the calibrated full scale (matching EXPERIMENTS.md). Set
``REPRO_BENCH_QUICK=1`` to run the evaluation figures at smoke scale.
"""

import os

import pytest

from repro.experiments.common import RunScale


@pytest.fixture(scope="session")
def eval_scale() -> RunScale:
    if os.environ.get("REPRO_BENCH_QUICK"):
        return RunScale.quick()
    return RunScale.full()


@pytest.fixture(scope="session")
def eval_matrix(eval_scale):
    """The shared Figs. 10–13 evaluation matrix (built once per session)."""
    from repro.experiments.evaluation import run_matrix

    return run_matrix(eval_scale)
