"""Fig. 3: steady heat map at full bandwidth, commodity cooling."""

from repro.experiments import fig3_heatmap


def test_fig3_heatmap(benchmark):
    result = benchmark(fig3_heatmap.run, sub=4)
    peaks = {name: peak for name, peak, _ in result.layer_peaks}
    # Logic layer and the adjacent DRAM die are the hottest (paper obs. 1).
    assert peaks["logic"] == max(peaks.values())
    assert peaks["dram0"] > peaks["dram7"]
    # Hot spots at vault centres (paper obs. 2).
    assert result.hotspot_is_vault_center
    print()
    print(fig3_heatmap.format_result(result))
