"""Fig. 11: normalized bandwidth consumption."""

import pytest

from repro.experiments import fig11_bandwidth_savings


def test_fig11_bandwidth(benchmark, eval_scale, eval_matrix):
    result = benchmark.pedantic(
        fig11_bandwidth_savings.run, args=(eval_scale,), rounds=1, iterations=1
    )
    for wl, ratios in result.traffic_ratio.items():
        # Offloading never adds link traffic.
        assert ratios["naive-offloading"] <= 1.0 + 1e-9
        # CoolPIM's partial offload saves at most as much as naive.
        assert ratios["naive-offloading"] <= ratios["coolpim-sw"] + 0.02

    # The paper's counterintuitive headline: the config with the largest
    # bandwidth saving (naive, on bfs-dwc) is NOT the fastest one.
    m = result.matrix
    assert m.speedup("bfs-dwc", "naive-offloading") < m.speedup(
        "bfs-dwc", "coolpim-sw"
    )
    print()
    print(fig11_bandwidth_savings.format_result(result))
