"""Fig. 1/2: prototype thermal points and model validation."""

from repro.experiments import fig1_prototype, fig2_validation


def test_fig1_prototype(benchmark):
    points = benchmark(fig1_prototype.run)
    passive_busy = next(
        p for p in points if p.cooling == "passive" and p.state == "busy"
    )
    assert passive_busy.shutdown
    # Model tracks the thermal-camera readings.
    assert all(abs(p.surface_c - p.paper_surface_c) < 7.0 for p in points)
    print()
    print(fig1_prototype.format_result(points))


def test_fig2_validation(benchmark):
    points = benchmark(fig2_validation.run)
    assert all(abs(p.error_c) < 10.0 for p in points)
    print()
    print(fig2_validation.format_result(points))
