"""Event-level HMC cube microbenchmarks.

Protocol-level behaviours the flow model abstracts away: bank-conflict
serialization, PIM RMW bank locking (Sec. II-B), and link-level FLIT
throughput.
"""

import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import PacketType, Request

#: Address stride that stays in one (vault, bank) pair: one full pass of
#: vault then bank interleaving.
SAME_BANK_STRIDE = (
    HMC_2_0.dram_access_granularity_bytes
    * HMC_2_0.num_vaults
    * HMC_2_0.banks_per_vault
)


def _run_reads(cube, addresses):
    last = 0.0
    for addr in addresses:
        rsp = cube.submit(Request(PacketType.READ64, address=addr), 0.0)
        last = max(last, rsp.complete_time_ns)
    return last


def test_bank_conflict_serialization(benchmark):
    """Same-bank accesses serialize; spread accesses run in parallel."""

    def scenario():
        conflict_cube = HmcCube(HMC_2_0)
        spread_cube = HmcCube(HMC_2_0)
        n = 64
        # Same bank, different rows: worst case (tRP+tRCD+tCL each).
        t_conflict = _run_reads(
            conflict_cube, [i * SAME_BANK_STRIDE * 64 for i in range(n)]
        )
        # Consecutive blocks: striped across vaults.
        t_spread = _run_reads(
            spread_cube, [i * 32 for i in range(n)]
        )
        return t_conflict, t_spread

    t_conflict, t_spread = benchmark(scenario)
    assert t_conflict > 3 * t_spread


def test_pim_rmw_locks_bank(benchmark):
    """A read behind a PIM RMW on the same bank waits for the full
    read-modify-write (Sec. II-B atomicity)."""

    def scenario():
        cube = HmcCube(HMC_2_0)
        inst = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        pim_rsp = cube.submit(Request(PacketType.PIM, address=0, pim=inst), 0.0)
        read_rsp = cube.submit(Request(PacketType.READ64, address=SAME_BANK_STRIDE), 0.0)
        return pim_rsp, read_rsp

    pim_rsp, read_rsp = benchmark(scenario)
    assert read_rsp.complete_time_ns > pim_rsp.complete_time_ns


def test_pim_cheaper_on_the_link_than_rmw(benchmark):
    """One PIM op moves 3 FLITs; the host equivalent moves 12 (Table I)."""

    def scenario():
        pim_cube = HmcCube(HMC_2_0)
        host_cube = HmcCube(HMC_2_0)
        inst = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        for i in range(32):
            addr = i * 32
            pim_cube.submit(
                Request(PacketType.PIM, address=addr,
                        pim=PimInstruction(PimOpcode.ADD_IMM, addr, 1)), 0.0
            )
            host_cube.submit(Request(PacketType.READ64, address=addr), 0.0)
            host_cube.submit(
                Request(PacketType.WRITE64, address=addr), 0.0, payload=b"\0" * 64
            )
        return pim_cube.links.total_flits(), host_cube.links.total_flits()

    pim_flits, host_flits = benchmark(scenario)
    assert pim_flits * 4 == host_flits  # 3 vs 12 FLITs per operation


def test_cube_read_throughput(benchmark):
    """Raw transaction throughput of the event-level model."""
    cube = HmcCube(HMC_2_0)

    def do_reads():
        for i in range(256):
            cube.submit(Request(PacketType.READ64, address=i * 32), 0.0)

    benchmark(do_reads)
    assert cube.stats.transactions >= 256
