"""Fig. 14: PIM rate over time for bfs-ta under the three controls."""

from repro.experiments import fig14_time_series


def test_fig14_time_series(benchmark, eval_scale):
    result = benchmark.pedantic(
        fig14_time_series.run, kwargs={"scale": eval_scale},
        rounds=1, iterations=1,
    )
    naive = result.series["naive-offloading"]

    # Naive holds a high rate for the whole run.
    naive_rates = [r for _t, r, _T in naive]
    assert min(naive_rates[1:]) > 0.5

    # Both CoolPIM variants end at a lower rate than naive's.
    for policy in ("coolpim-sw", "coolpim-hw"):
        series = result.series[policy]
        assert series[-1][1] < naive_rates[-1] + 1e-9

    # If the run heats to the threshold, the warning lands within a few ms
    # of launch (Fig. 14: ~2.5 ms).
    warn = result.first_warning_ms["naive-offloading"]
    if warn is not None:
        assert warn < 10.0

    print()
    print(fig14_time_series.format_result(result))
