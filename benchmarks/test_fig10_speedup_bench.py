"""Fig. 10: the headline speedup comparison.

Regenerates the ten-benchmark × four-configuration speedup figure and
checks the paper's qualitative claims:

- CoolPIM beats naïve offloading wherever the thermal limit binds;
- naïve offloading *degrades* the warp-centric BFS kernels below baseline;
- ideal-thermal bounds everything and averages ~1.4×;
- kcore/sssp-dtc are identical across naïve and CoolPIM.
"""

import pytest

from repro.experiments import fig10_speedup


def test_fig10_speedups(benchmark, eval_scale, eval_matrix):
    result = benchmark.pedantic(
        fig10_speedup.run, args=(eval_scale,), rounds=1, iterations=1
    )
    su = result.speedups

    # Ideal thermal dominates and shows a healthy average gain.
    assert result.geo_means["ideal-thermal"] > 1.25
    for wl, per in su.items():
        assert per["ideal-thermal"] >= max(
            per["naive-offloading"], per["coolpim-sw"], per["coolpim-hw"]
        ) - 1e-9

    # Naive offloading hurts the thermally-hottest kernels (paper: -18/-16%).
    assert su["bfs-dwc"]["naive-offloading"] < 1.0
    assert su["bfs-twc"]["naive-offloading"] < 1.0

    # CoolPIM recovers them (paper: up to 1.37x over naive).
    best_vs_naive = result.best_coolpim_vs_naive()
    assert best_vs_naive > 1.25

    # CoolPIM average in the paper's +20%-class range.
    assert max(result.geo_means["coolpim-sw"],
               result.geo_means["coolpim-hw"]) > 1.15

    # kcore and sssp-dtc: no thermal issue, throttling changes nothing.
    for wl in ("kcore", "sssp-dtc"):
        assert su[wl]["coolpim-sw"] == pytest.approx(
            su[wl]["naive-offloading"], rel=0.05
        )

    print()
    print(fig10_speedup.format_result(result))
