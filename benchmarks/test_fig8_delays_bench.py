"""Fig. 8: feedback-control delays, constants and measured reaction."""

import pytest

from repro.experiments import fig8_delays
from repro.experiments.common import RunScale


def test_fig8_delays(benchmark, eval_scale):
    result = benchmark.pedantic(
        fig8_delays.run, kwargs={"scale": eval_scale}, rounds=1, iterations=1
    )
    # The paper's table values.
    assert result.sw.throttle_s == pytest.approx(0.1e-3)
    assert result.hw.throttle_s == pytest.approx(0.1e-6)
    assert result.sw.thermal_s == pytest.approx(1e-3)
    # If the run warmed enough to warn, HW reacts faster than SW.
    sw_t, hw_t = result.measured_s["software"], result.measured_s["hardware"]
    if sw_t is not None and hw_t is not None:
        assert hw_t <= sw_t
    print()
    print(fig8_delays.format_result(result))
