"""Job service: pooled vs serial sweep wall-time, cold vs warm cache.

Run with ``pytest benchmarks/test_service_bench.py --benchmark-only``.
The sweep benchmark uses fixed-duration sleep jobs so the parallel
speedup is attributable to the scheduler rather than simulator noise;
the cache benchmark replays real simulation jobs against the store.
"""

import multiprocessing
import time

import pytest

from repro.service import (
    JobScheduler,
    JobSpec,
    ResultStore,
    register_handler,
    simulation_spec,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="pooled benchmarks need the fork start method"
)

N_JOBS = 8
JOB_DURATION_S = 0.1
POOL_WORKERS = 4


def _fixed_work(spec):
    time.sleep(JOB_DURATION_S)
    return {"i": spec.params["i"]}


register_handler("bench-sleep", _fixed_work)


def _sleep_specs():
    return [
        JobSpec(kind="bench-sleep", name=f"bench{i}", params={"i": i})
        for i in range(N_JOBS)
    ]


@needs_fork
def test_pooled_sweep_beats_serial(benchmark):
    t0 = time.perf_counter()
    serial_report = JobScheduler(serial=True).run(_sleep_specs())
    serial_s = time.perf_counter() - t0
    assert serial_report.ok

    pooled_report = benchmark.pedantic(
        lambda: JobScheduler(max_workers=POOL_WORKERS).run(_sleep_specs()),
        rounds=3,
        iterations=1,
    )
    assert pooled_report.ok and pooled_report.executed == N_JOBS
    pooled_s = benchmark.stats.stats.mean
    print()
    print(f"serial sweep : {serial_s:.3f} s  ({N_JOBS} x {JOB_DURATION_S} s jobs)")
    print(f"pooled sweep : {pooled_s:.3f} s  ({POOL_WORKERS} workers)")
    print(f"speedup      : {serial_s / pooled_s:.2f}x")
    # 8 x 0.1 s of work on 4 workers should land well under serial time.
    assert pooled_s < serial_s


@needs_fork
def test_warm_cache_beats_cold(benchmark, tmp_path):
    store = ResultStore(root=tmp_path / "cache")
    specs = [
        simulation_spec("kcore", dataset="ldbc-tiny", policy="non-offloading"),
        simulation_spec("dc", dataset="ldbc-tiny", policy="coolpim-hw"),
    ]
    t0 = time.perf_counter()
    cold = JobScheduler(store=store, max_workers=2).run(specs)
    cold_s = time.perf_counter() - t0
    assert cold.ok and cold.executed == len(specs)

    warm = benchmark.pedantic(
        lambda: JobScheduler(store=store, serial=True).run(specs),
        rounds=5,
        iterations=1,
    )
    assert warm.cache_hits == len(specs) and warm.executed == 0
    warm_s = benchmark.stats.stats.mean
    print()
    print(f"cold sweep (simulated)  : {cold_s:.3f} s")
    print(f"warm sweep (cache hits) : {warm_s * 1e3:.1f} ms")
    print(f"speedup                 : {cold_s / warm_s:.0f}x")
    assert warm_s < cold_s
