"""Observability overhead guard.

The tracer instrumentation added to :meth:`EventEngine.run` must be
effectively free when tracing is disabled (the default for every
production run). This benchmark times the instrumented engine against a
``_SeedRunEngine`` whose ``run()`` reproduces the pre-instrumentation
loop verbatim, and pins the disabled-tracer overhead below 5 %.

Interleaved best-of-N minima are compared, so scheduler noise and cache
warm-up hit both variants symmetrically.
"""

import time

from repro.obs.tracer import get_tracer
from repro.sim.engine import EventEngine

EVENTS_PER_RUN = 20_000
ROUNDS = 9
OVERHEAD_LIMIT = 0.05


class _SeedRunEngine(EventEngine):
    """EventEngine with the seed's uninstrumented run() loop."""

    def run(self, until=None, max_events=None):
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                break
            self.step()
            count += 1
        if until is not None and until > self._now:
            t = self.peek_time()
            if t is None or t > until:
                self._now = until
        return count


def _nop():
    pass


def _drain_once(engine_cls):
    engine = engine_cls()
    for i in range(EVENTS_PER_RUN):
        engine.schedule(float(i), _nop)
    t0 = time.perf_counter()
    processed = engine.run()
    elapsed = time.perf_counter() - t0
    assert processed == EVENTS_PER_RUN
    return elapsed


def test_disabled_tracer_overhead_below_5_percent():
    assert not get_tracer().enabled, "benchmark requires tracing off"
    instrumented, baseline = [], []
    _drain_once(EventEngine)  # warm-up
    _drain_once(_SeedRunEngine)
    for _ in range(ROUNDS):
        instrumented.append(_drain_once(EventEngine))
        baseline.append(_drain_once(_SeedRunEngine))
    best_instr = min(instrumented)
    best_base = min(baseline)
    overhead = best_instr / best_base - 1.0
    print(
        f"\n  engine.run drain of {EVENTS_PER_RUN} events: "
        f"instrumented {best_instr * 1e3:.2f} ms, "
        f"seed {best_base * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert overhead < OVERHEAD_LIMIT, (
        f"disabled-tracer overhead {overhead * 100:.1f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% budget"
    )
