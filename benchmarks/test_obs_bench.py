"""Observability overhead guard.

The tracer instrumentation added to :meth:`EventEngine.run` must be
effectively free when tracing is disabled (the default for every
production run). This benchmark times the instrumented engine against a
``_SeedRunEngine`` whose ``run()`` reproduces the pre-instrumentation
loop verbatim, and pins the disabled-tracer overhead below 5 %.

Interleaved best-of-N minima are compared, so scheduler noise and cache
warm-up hit both variants symmetrically.
"""

import time

import pytest

from repro.obs.tracer import get_tracer
from repro.sim.engine import EventEngine

EVENTS_PER_RUN = 20_000
ROUNDS = 9
OVERHEAD_LIMIT = 0.05


class _SeedRunEngine(EventEngine):
    """EventEngine with the seed's uninstrumented run() loop."""

    def run(self, until=None, max_events=None):
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                break
            self.step()
            count += 1
        if until is not None and until > self._now:
            t = self.peek_time()
            if t is None or t > until:
                self._now = until
        return count


def _nop():
    pass


def _drain_once(engine_cls):
    engine = engine_cls()
    for i in range(EVENTS_PER_RUN):
        engine.schedule(float(i), _nop)
    t0 = time.perf_counter()
    processed = engine.run()
    elapsed = time.perf_counter() - t0
    assert processed == EVENTS_PER_RUN
    return elapsed


def test_disabled_tracer_overhead_below_5_percent():
    assert not get_tracer().enabled, "benchmark requires tracing off"
    instrumented, baseline = [], []
    _drain_once(EventEngine)  # warm-up
    _drain_once(_SeedRunEngine)
    for _ in range(ROUNDS):
        instrumented.append(_drain_once(EventEngine))
        baseline.append(_drain_once(_SeedRunEngine))
    best_instr = min(instrumented)
    best_base = min(baseline)
    overhead = best_instr / best_base - 1.0
    print(
        f"\n  engine.run drain of {EVENTS_PER_RUN} events: "
        f"instrumented {best_instr * 1e3:.2f} ms, "
        f"seed {best_base * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert overhead < OVERHEAD_LIMIT, (
        f"disabled-tracer overhead {overhead * 100:.1f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% budget"
    )


# --- live-telemetry control-loop overhead --------------------------------
#
# The engines check for a run sink inline (stepped: every control step;
# macro: every commit boundary). With a sink attached the per-step cost
# is one attribute comparison; detached it is one `is not None` test.
# Either way the control loop must stay within 5% of the
# telemetry-disabled time on BOTH engines. A small absolute epsilon
# absorbs timer granularity on these ~100 ms runs.

TELEMETRY_ROUNDS = 7
TELEMETRY_ABS_EPS_S = 0.002


def _sim_once(engine, sink):
    from repro.core.policies import make_policy
    from repro.gpu.kernel import KernelLaunch
    from repro.gpu.simulator import SystemSimulator
    from repro.hmc.config import HMC_2_0
    from repro.hmc.flow import HmcFlowModel
    from repro.sim.trace import OpBatch, TraceCursor
    from repro.telemetry.live import run_telemetry
    from repro.thermal.cooling import COMMODITY_SERVER
    from repro.thermal.model import HmcThermalModel
    from repro.thermal.sensor import ThermalSensor

    launch = KernelLaunch(
        name="telemetry-bench",
        trace=TraceCursor([
            OpBatch(reads=120_000, writes=60_000, atomics=250_000,
                    compute_cycles=15_000, threads=4096, label=f"e{i}")
            for i in range(8)
        ]),
        total_threads=4096,
    )
    sim = SystemSimulator(
        flow=HmcFlowModel(HMC_2_0),
        thermal=HmcThermalModel(HMC_2_0, cooling=COMMODITY_SERVER),
        sensor=ThermalSensor(),
        engine=engine,
    )
    policy = make_policy("coolpim-hw")
    t0 = time.perf_counter()
    if sink is not None:
        with run_telemetry(sink):
            sim.run(launch, policy)
    else:
        sim.run(launch, policy)
    return time.perf_counter() - t0


@pytest.mark.parametrize("engine", ["stepped", "macro"])
def test_telemetry_enabled_overhead_below_5_percent(engine):
    from repro.telemetry.live import RunTelemetrySink

    def make_sink():
        return RunTelemetrySink(emit=lambda s: None, max_samples=64)

    _sim_once(engine, None)  # warm-up
    _sim_once(engine, make_sink())
    enabled, disabled = [], []
    for _ in range(TELEMETRY_ROUNDS):
        enabled.append(_sim_once(engine, make_sink()))
        disabled.append(_sim_once(engine, None))
    best_on, best_off = min(enabled), min(disabled)
    overhead = best_on / best_off - 1.0
    print(
        f"\n  {engine}: telemetry on {best_on * 1e3:.2f} ms, "
        f"off {best_off * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert best_on < best_off * (1 + OVERHEAD_LIMIT) + TELEMETRY_ABS_EPS_S, (
        f"{engine}: telemetry-enabled control loop is "
        f"{overhead * 100:.1f}% slower than disabled "
        f"(budget {OVERHEAD_LIMIT * 100:.0f}%)"
    )
