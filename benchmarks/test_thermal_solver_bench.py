"""Thermal solver performance: the co-simulation's inner loop.

Also guards the tentpole wins of the vectorized assembly rewrite:
``test_network_assembly_vectorized_speedup`` asserts the numpy assembly
beats the per-cell loop reference by >=5x, and the shared-operator
benchmarks show warm model construction skipping assembly entirely.
"""

import time

import numpy as np

from repro.hmc.config import HMC_2_0
from repro.thermal import operators
from repro.thermal.floorplan import Floorplan
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint
from repro.thermal.rc_network import build_network, build_network_reference
from repro.thermal.stack import build_stack


def test_steady_solve_speed(benchmark):
    model = HmcThermalModel()
    t = TrafficPoint.streaming(320.0)
    temp = benchmark(model.steady_peak_dram_c, t)
    assert 80.0 < temp < 82.0


def test_transient_step_speed(benchmark):
    """One 25 µs control-quantum step — executed hundreds of times per
    simulated run; must stay well under a millisecond of wall time."""
    model = HmcThermalModel()
    model.warm_start(TrafficPoint.streaming(240.0))
    t = TrafficPoint.pim_saturated(3.0)

    result = benchmark(model.step, t, 25e-6)
    assert np.isfinite(result)


def test_settle_fast_path_speed(benchmark):
    """Constant-power settling via the batched run_to_steady path."""
    model = HmcThermalModel()
    t = TrafficPoint.streaming(240.0)

    def settle():
        model.reset_transient()
        return model.settle(t, dt_s=1e-3, tol_c=1e-4)

    result = benchmark(settle)
    assert np.isfinite(result)


def test_network_assembly_speed(benchmark):
    """Cold vectorized assembly of the full HMC 2.0 network."""
    stack = build_stack(HMC_2_0)
    fp = Floorplan.for_config(HMC_2_0, sub=2)
    net = benchmark(build_network, stack, fp, 0.5)
    assert net.num_nodes > 0


def test_network_assembly_vectorized_speedup(benchmark):
    """The vectorized assembly must beat the loop reference by >=5x."""
    stack = build_stack(HMC_2_0)
    fp = Floorplan.for_config(HMC_2_0, sub=4)
    reps = 3

    def best_of(fn) -> float:
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(stack, fp, 0.5)
            times.append(time.perf_counter() - t0)
        return min(times)

    t_ref = best_of(build_network_reference)
    t_vec = benchmark(best_of, build_network)
    speedup = t_ref / t_vec
    assert speedup >= 5.0, f"vectorized assembly only {speedup:.1f}x faster"


def test_warm_model_construction_speed(benchmark):
    """Model construction with a warm operator cache: no assembly, no LU.

    This is what every job after the first pays inside a sweep worker —
    it must be orders of magnitude cheaper than the cold build.
    """
    operators.clear_cache()
    HmcThermalModel()  # populate the cache

    model = benchmark(HmcThermalModel)
    assert model.network.num_nodes > 0
    assert operators.cache_stats()["misses"] == 1
