"""Thermal solver performance: the co-simulation's inner loop."""

import numpy as np

from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint


def test_steady_solve_speed(benchmark):
    model = HmcThermalModel()
    t = TrafficPoint.streaming(320.0)
    temp = benchmark(model.steady_peak_dram_c, t)
    assert 80.0 < temp < 82.0


def test_transient_step_speed(benchmark):
    """One 25 µs control-quantum step — executed hundreds of times per
    simulated run; must stay well under a millisecond of wall time."""
    model = HmcThermalModel()
    model.warm_start(TrafficPoint.streaming(240.0))
    t = TrafficPoint.pim_saturated(3.0)

    result = benchmark(model.step, t, 25e-6)
    assert np.isfinite(result)


def test_network_build_speed(benchmark):
    def build():
        return HmcThermalModel(sub=2)

    model = benchmark(build)
    assert model.network.num_nodes > 0
