"""Detailed co-simulation engine throughput.

Guards the tentpole win of the batched struct-of-arrays transaction
engine (:mod:`repro.hmc.batch`): ``test_batched_vs_event_throughput``
pins the batched engine at >=10x the scalar event oracle on an
identical >=10^5-transaction workload, and
``test_million_transaction_budget`` exercises the raised practical
budget (10^6 transactions in one run). Ratios of interleaved best-of-N
minima are compared, so machine speed cancels out of the guard.
"""

import time

from repro.core.policies import IdealThermal
from repro.gpu.detailed import DetailedSimulator
from repro.gpu.kernel import KernelLaunch
from repro.sim.trace import OpBatch, TraceCursor

#: Workload size for the head-to-head guard (>=1e5 per the acceptance bar).
#: Large enough that the per-run fixed cost (~30 ms of thermal warm-start
#: shared by both engines) stays under ~10% of the batched wall time and
#: the ratio reflects engine throughput, not setup.
GUARD_TXNS = 240_000
SPEEDUP_FLOOR = 10.0


def _launch(epochs=8):
    # Large epochs amortize per-batch fixed costs; one epoch already
    # exceeds GUARD_TXNS, so both engines run a single full batch plus
    # the capped remainder.
    return KernelLaunch(
        name="detailed-bench",
        trace=TraceCursor([
            OpBatch(reads=96_000, writes=64_000, atomics=52_000,
                    threads=4096, label=f"e{i}")
            for i in range(epochs)
        ]),
        total_threads=4096,
    )


def _timed_run(engine, cap):
    # IdealThermal isolates the transaction engines: the thermal solve
    # (scipy LU refactorization) otherwise dominates both identically.
    sim = DetailedSimulator(
        seed=3, engine=engine, max_transactions=cap, thermal_update_txns=4096
    )
    t0 = time.perf_counter()
    res = sim.run(_launch(), IdealThermal())
    elapsed = time.perf_counter() - t0
    assert res.transactions == cap
    assert res.engine == engine
    return elapsed


def test_batched_vs_event_throughput(benchmark):
    """The batched engine must beat the scalar oracle by >=10x."""
    reps = 3

    def best_of(engine) -> float:
        return min(_timed_run(engine, GUARD_TXNS) for _ in range(reps))

    t_event = best_of("event")
    t_batched = benchmark(best_of, "batched")
    speedup = t_event / t_batched
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched engine only {speedup:.1f}x faster than the event oracle "
        f"at {GUARD_TXNS} transactions"
    )


def test_million_transaction_budget(benchmark):
    """A 10^6-transaction run completes in interactive time (the scalar
    path's practical ceiling was ~10^5)."""
    elapsed = benchmark(_timed_run, "batched", 1_000_000)
    # Generous CI bound: locally this runs in ~1.5 s.
    assert elapsed < 60.0
