"""Fig. 13: peak DRAM temperature per benchmark."""

from repro.experiments import fig13_peak_temp


def test_fig13_peak_temps(benchmark, eval_scale, eval_matrix):
    result = benchmark.pedantic(
        fig13_peak_temp.run, args=(eval_scale,), rounds=1, iterations=1
    )
    temps = result.temps

    # Naive exceeds 90 C on the hot benchmarks, ~95-96 C at worst.
    assert result.hottest_naive() > 93.0
    hot_count = sum(
        1 for wl in temps if temps[wl]["naive-offloading"] > 90.0
    )
    assert hot_count >= 5  # "most benchmarks"

    # CoolPIM keeps the cube at/near the 85 C normal-range boundary.
    assert result.hottest_coolpim() < 92.0
    for wl in temps:
        sw = temps[wl]["coolpim-sw"]
        assert sw <= temps[wl]["naive-offloading"] + 0.5
        assert sw < 91.5

    print()
    print(fig13_peak_temp.format_result(result))
