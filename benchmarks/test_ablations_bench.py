"""Design-choice ablations called out in DESIGN.md §6.

- Control-factor sweep (Sec. IV-B: large CF cools fast but under-tunes,
  small CF converges slowly).
- PTP margin ablation (Eq. (1)'s +4 blocks).
- The cooling requirement of Sec. III-B: full-loaded PIM under 85 °C needs
  a sink in the high-end class, and its fan power is a large fraction of
  the cube's own power.
"""

import pytest
from scipy.optimize import brentq

from repro.core import CoolPimSystem
from repro.core.initialization import PtpInitializer
from repro.core.sw_dynt import SwDynT
from repro.graph import get_dataset
from repro.thermal.cooling import fan_power_w
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import PowerModel, TrafficPoint
from repro.workloads.dc import DegreeCentrality


def _hot_workload():
    w = DegreeCentrality()
    w.repeats = 36
    return w


def test_control_factor_sweep(benchmark):
    """CF trade-off: every CF must keep the cube within limits; larger CF
    throttles deeper (more under-tuning risk)."""
    graph = get_dataset("ldbc")
    system = CoolPimSystem()

    def sweep():
        out = {}
        for cf in (2, 8, 32):
            res = system.run(_hot_workload(), graph, SwDynT(control_factor=cf))
            out[cf] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fractions = {cf: r.offload_fraction for cf, r in results.items()}
    temps = {cf: r.peak_dram_temp_c for cf, r in results.items()}
    print()
    for cf in sorted(results):
        r = results[cf]
        print(f"  CF={cf:3d}: frac={fractions[cf]:.2f} "
              f"peakT={temps[cf]:.1f} C t={r.runtime_s * 1e3:.2f} ms")
    # All configurations control the temperature.
    assert all(t < 92.0 for t in temps.values())
    # The largest CF never offloads more than the smallest.
    assert fractions[32] <= fractions[2] + 0.02


def test_ptp_margin_ablation(benchmark):
    """Margin 0 vs the paper's 4 blocks vs an over-generous 16."""
    graph = get_dataset("ldbc")
    system = CoolPimSystem()

    def sweep():
        out = {}
        for margin in (0, 4, 16):
            policy = SwDynT(initializer=PtpInitializer(margin_blocks=margin))
            out[margin] = system.run(_hot_workload(), graph, policy)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for margin, r in sorted(results.items()):
        print(f"  margin={margin:2d}: frac={r.offload_fraction:.2f} "
              f"peakT={r.peak_dram_temp_c:.1f} C")
    # A bigger initial margin starts hotter (or equal).
    assert (results[16].peak_dram_temp_c
            >= results[0].peak_dram_temp_c - 0.5)


def test_cooling_requirement_for_pim_loads(benchmark):
    """Sec. III-B: keeping PIM-loaded operation below 85 C requires a sink
    in the high-end class (paper: < 0.27 C/W for a full-loaded PIM), and
    that class of fan consumes a large fraction of the cube's own power.

    In our calibration the stack's internal (junction-to-case) resistance
    is higher than the paper's, so for the extreme 6.5 op/ns load no
    external sink suffices — we report the requirement across rates and
    check the qualitative claim: the budget shrinks rapidly with rate and
    leaves the realm of commodity cooling.
    """
    from repro.thermal.cooling import CoolingSolution

    def peak_at(r_sink, rate):
        m = HmcThermalModel(cooling=CoolingSolution("custom", r_sink, 1.0))
        return m.steady_peak_dram_c(TrafficPoint.pim_saturated(rate))

    def requirement_sweep():
        out = {}
        for rate in (1.3, 2.0, 3.0, 4.0, 6.5):
            lo, hi = 0.02, 6.0
            if peak_at(lo, rate) > 85.0:
                out[rate] = None  # unreachable with any sink
            elif peak_at(hi, rate) < 85.0:
                out[rate] = hi
            else:
                out[rate] = brentq(
                    lambda r: peak_at(r, rate) - 85.0, lo, hi, xtol=1e-3
                )
        return out

    required = benchmark.pedantic(requirement_sweep, rounds=1, iterations=1)
    print()
    for rate, r in required.items():
        label = f"{r:.3f} C/W" if r is not None else "unreachable"
        print(f"  PIM rate {rate:.1f} op/ns -> required sink: {label}")

    # Budget shrinks monotonically with the offloading rate.
    values = [r if r is not None else 0.0 for r in required.values()]
    assert values == sorted(values, reverse=True)
    # The paper's threshold rate (1.3 op/ns) is sustainable with a
    # commodity-class sink; 4+ op/ns is not.
    assert required[1.3] is not None and required[1.3] > 0.4
    assert required[4.0] is None or required[4.0] < 0.27

    # A high-end sink's fan is a big slice of the cube's own power.
    fan_w = fan_power_w(0.2, wheel_diameter_relative=2.0)
    cube_w = PowerModel(HmcThermalModel().config).package_total_w(
        TrafficPoint.pim_saturated(6.5)
    )
    print(f"  high-end fan {fan_w:.1f} W vs cube {cube_w:.1f} W")
    assert fan_w > 0.25 * cube_w


def test_coherence_mode_ablation(benchmark):
    """GraphPIM's cache bypass vs PEI's invalidate/writeback coherence
    (Sec. II-B): bypass avoids per-op writeback traffic, so offloading
    gains more. Runs pagerank under ideal-thermal to isolate the
    bandwidth effect from the thermal loop."""
    from repro.gpu.caches import CacheModel
    from repro.gpu.config import GPU_DEFAULT
    from repro.gpu.simulator import SystemSimulator
    from repro.graph import get_dataset
    from repro.workloads.pagerank import PageRank
    from repro.core.policies import IdealThermal, NonOffloading

    graph = get_dataset("ldbc")

    def compare():
        w = PageRank()
        w.iterations = 16
        launch = w.launch(graph)
        out = {}
        c = w.coeffs
        for mode in ("bypass", "writeback"):
            cache = CacheModel(
                GPU_DEFAULT,
                read_hit_rate=c.read_hit_rate,
                write_hit_rate=c.write_hit_rate,
                host_atomic_coalescing=c.atomic_coalescing,
                coherence_mode=mode,
            )
            sim = SystemSimulator(cache=cache)
            base = sim.run(launch, NonOffloading())
            ideal = sim.run(launch, IdealThermal())
            out[mode] = ideal.speedup_over(base)
        return out

    speedups = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n  offloading speedup: bypass {speedups['bypass']:.2f}x vs "
          f"PEI-style writeback {speedups['writeback']:.2f}x")
    # Cache bypass preserves more of the offloading benefit.
    assert speedups["bypass"] > speedups["writeback"]


def test_static_fraction_sweep(benchmark):
    """Open-loop sweep of fixed offloading fractions vs CoolPIM.

    The sweep traces the thermal trade-off curve directly: low fractions
    waste offloading headroom, high fractions overheat. CoolPIM's
    closed-loop control should land near the static optimum *without*
    knowing it in advance."""
    from repro.core.policies import StaticFraction

    graph = get_dataset("ldbc")
    system = CoolPimSystem()

    def sweep():
        out = {}
        for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
            res = system.run(_hot_workload(), graph, StaticFraction(frac))
            out[frac] = res
        out["coolpim-sw"] = system.run(_hot_workload(), graph, "coolpim-sw")
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = results[0.0]
    sus = {}
    print()
    for key, res in results.items():
        su = base.runtime_s / res.runtime_s
        sus[key] = su
        label = key if isinstance(key, str) else f"frac={key:.2f}"
        print(f"  {label:12}: su={su:.3f} peakT={res.peak_dram_temp_c:5.1f} C")

    static_best = max(su for k, su in sus.items() if isinstance(k, float))
    # Closed-loop CoolPIM reaches at least ~90% of the best static point.
    assert sus["coolpim-sw"] >= 0.9 * static_best
    # The sweep is non-monotone: full offloading is NOT the best static
    # point (the thermal penalty bends the curve back down).
    assert sus[1.0] < static_best


def test_dataset_sensitivity(benchmark):
    """Extension: social vs road-like graph structure. Power-law frontiers
    saturate the memory system and overheat under naive offloading;
    road-network frontiers never do (memory-level-parallelism limited)."""
    from repro.experiments import sensitivity
    from repro.experiments.common import RunScale

    result = benchmark.pedantic(
        sensitivity.run, args=(RunScale.full(),), rounds=1, iterations=1
    )
    print()
    print(sensitivity.format_result(result))
    # Social graph overheats under naive offloading; road stays cool.
    assert result.naive_peak("ldbc", "bfs-dwc") > 90.0
    assert result.naive_peak("road", "bfs-dwc") < 85.0


def test_cooling_budget_sweep(benchmark):
    """Extension: CoolPIM adapts its offloading intensity to the fitted
    heat sink with no reconfiguration — throttling nearly everything
    under a low-end sink (where naive offloading shuts the cube down)
    and opening up under a high-end sink."""
    from repro.experiments import cooling_sweep
    from repro.experiments.common import RunScale

    result = benchmark.pedantic(
        cooling_sweep.run, args=("bfs-twc", RunScale.full()),
        rounds=1, iterations=1,
    )
    print()
    print(cooling_sweep.format_result(result))
    # Naive offloading under a low-end sink hits thermal shutdown.
    naive_low = result.cells["low-end"]["naive-offloading"]
    assert naive_low[0] < 0.5
    # CoolPIM never does worse than ~baseline, under any sink.
    for sink in ("low-end", "commodity", "high-end"):
        assert result.cells[sink]["coolpim-sw"][0] > 0.95
    # And it offloads more as the cooling budget grows.
    assert (result.coolpim_fraction("high-end")
            > result.coolpim_fraction("low-end"))
