"""Sweep-scale throughput: gang engine vs the per-run macro path.

Guards the tentpole win of the gang engine (:mod:`repro.gpu.gang`) on
the Fig. 10 sweep — every registry workload under the full five-policy
evaluation matrix, executed the way the job service executes sweeps:

- **per-run leg** — one ``simulation`` job per (workload, policy) cell,
  each re-running :func:`~repro.service.handlers.run_simulation_job`
  exactly as a sweep worker would (fresh system, fresh epoch-trace
  generation per run).
- **gang leg** — one ``gang_sweep`` job per workload
  (:func:`~repro.service.handlers.run_gang_sweep_job`): the trace is
  generated once and the policy lanes march in lockstep through the
  shared reduced thermal basis.

``test_gang_sweep_speedup`` pins the gang at >=4x aggregate wall clock
over the per-run leg at the calibrated full scale (>=1.5x under
``REPRO_BENCH_QUICK=1``, where the small graph shrinks the trace
generation the gang amortizes), while re-asserting member results are
*bit-identical* to per-run payloads across every cell of the sweep.

Each run's measurements are appended to ``BENCH_sweep.json`` (written to
the working directory); ``benchmarks/baselines.json`` registers the
aggregate for the ``repro bench-trend`` gate.
"""

import json
import os
import time
from pathlib import Path

from repro.core.policies import POLICY_NAMES
from repro.service.handlers import (
    gang_sweep_spec,
    run_gang_sweep_job,
    run_simulation_job,
    simulation_spec,
)
from repro.workloads import list_workloads

#: The Fig. 10 evaluation matrix: the four policy curves plus the
#: non-offloading baseline they are normalized to.
POLICIES = list(POLICY_NAMES)

#: Aggregate wall-clock floor, gang over per-run, at full scale. The
#: quick floor is lower: the smoke graph makes trace generation — the
#: dominant per-run cost the gang amortizes — nearly free.
SPEEDUP_FLOOR_FULL = 4.0
SPEEDUP_FLOOR_QUICK = 1.5

ARTIFACT = Path("BENCH_sweep.json")


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _config():
    if _quick():
        return "ldbc-small", 0.25, SPEEDUP_FLOOR_QUICK
    return "ldbc", 1.0, SPEEDUP_FLOOR_FULL


def _result_of(payload):
    """The comparable portion of a job payload's result dict."""
    result = dict(payload["result"])
    result.pop("timeline", None)
    return result


def test_gang_sweep_speedup():
    dataset, scale, floor = _config()
    workloads = list_workloads()

    # Warm the process the way a prewarmed sweep worker is warmed:
    # dataset load, thermal operator assembly, reduced-basis projection.
    run_simulation_job(simulation_spec(
        "pagerank", dataset=dataset, policy="coolpim-hw",
        workload_scale=scale,
    ))

    per_run_payloads = {}
    per_run_s = {}
    t_leg = time.perf_counter()
    for wl in workloads:
        t0 = time.perf_counter()
        for policy in POLICIES:
            spec = simulation_spec(
                wl, dataset=dataset, policy=policy, workload_scale=scale,
            )
            per_run_payloads[wl, policy] = run_simulation_job(spec)
        per_run_s[wl] = time.perf_counter() - t0
    per_run_total = time.perf_counter() - t_leg

    gang_payloads = {}
    gang_s = {}
    t_leg = time.perf_counter()
    for wl in workloads:
        t0 = time.perf_counter()
        gang_payloads[wl] = run_gang_sweep_job(gang_sweep_spec(
            wl, POLICIES, dataset=dataset, workload_scale=scale,
        ))
        gang_s[wl] = time.perf_counter() - t0
    gang_total = time.perf_counter() - t_leg

    # Correctness rides along with the timing: every member of every
    # gang must be bit-identical to its per-run payload (the full
    # contract lives in tests/gpu/test_gang_equivalence.py).
    for wl in workloads:
        members = gang_payloads[wl]["members"]
        assert [m["payload"]["policy"] for m in members] == POLICIES, wl
        for member in members:
            policy = member["payload"]["policy"]
            assert _result_of(member["payload"]) == _result_of(
                per_run_payloads[wl, policy]
            ), (wl, policy)

    aggregate = per_run_total / gang_total
    rows = {
        wl: {
            "per_run_s": per_run_s[wl],
            "gang_s": gang_s[wl],
            "speedup": per_run_s[wl] / gang_s[wl],
        }
        for wl in workloads
    }
    ARTIFACT.write_text(json.dumps({
        "benchmark": "sweep_gang_vs_per_run",
        "config": {
            "dataset": dataset,
            "workload_scale": scale,
            "policies": POLICIES,
            "workloads": workloads,
            "quick": _quick(),
        },
        "per_run_s": per_run_total,
        "gang_s": gang_total,
        "aggregate_speedup": aggregate,
        "workloads_detail": rows,
    }, indent=2) + "\n")

    per_wl = ", ".join(f"{wl}={r['speedup']:.1f}x" for wl, r in rows.items())
    assert aggregate >= floor, (
        f"gang engine only {aggregate:.2f}x over the per-run sweep "
        f"(floor {floor}x; {per_wl})"
    )
