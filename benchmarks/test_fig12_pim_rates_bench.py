"""Fig. 12: average PIM offloading rates."""

from repro.experiments import fig12_pim_rate_avg


def test_fig12_pim_rates(benchmark, eval_scale, eval_matrix):
    result = benchmark.pedantic(
        fig12_pim_rate_avg.run, args=(eval_scale,), rounds=1, iterations=1
    )
    rates = result.rates

    # Warp-centric BFS kernels offload hardest under naive (paper: ~4;
    # our rates average over the derated phases).
    hot = max(rates["bfs-dwc"]["naive-offloading"],
              rates["bfs-twc"]["naive-offloading"])
    assert hot > 2.0

    # kcore / sssp-dtc sit below the thermal threshold natively.
    assert rates["kcore"]["naive-offloading"] < 1.5
    assert rates["sssp-dtc"]["naive-offloading"] < 1.5

    # CoolPIM keeps every benchmark near/below the 1.3 op/ns threshold.
    assert result.coolpim_within_threshold(slack=0.4)

    print()
    print(fig12_pim_rate_avg.format_result(result))
