"""Fig. 4: peak DRAM temperature vs bandwidth × cooling."""

import pytest

from repro.experiments import fig4_bandwidth


def test_fig4_bandwidth_sweep(benchmark):
    sweep = benchmark(fig4_bandwidth.run)
    commodity = sweep.curves["commodity"]
    assert commodity[0] == pytest.approx(33.0, abs=0.5)
    assert commodity[-1] == pytest.approx(81.0, abs=0.5)
    # Weak sinks blow through the 105 C operating ceiling early.
    assert sweep.ceiling_crossing_gbs["passive"] <= 240
    assert sweep.ceiling_crossing_gbs["low-end"] <= 320
    assert sweep.ceiling_crossing_gbs["high-end"] is None
    print()
    print(fig4_bandwidth.format_result(sweep))
