"""Fig. 5: peak DRAM temperature vs PIM offloading rate."""

import pytest

from repro.experiments import fig5_pim_rate


def test_fig5_pim_rate_sweep(benchmark):
    sweep = benchmark(fig5_pim_rate.run)
    # 105 C ceiling at 6.5 op/ns (the paper's maximum offloading rate).
    assert sweep.max_rate_limit == pytest.approx(6.5, abs=0.15)
    # Staying in the normal range needs ~1 op/ns-class rates (paper: 1.3).
    assert 0.9 < sweep.normal_rate_limit < 1.5
    # Positive rate/temperature correlation across the sweep.
    assert sweep.temps_c == sorted(sweep.temps_c)
    print()
    print(fig5_pim_rate.format_result(sweep))
