"""Tables I–IV: regeneration benches with content checks."""

from repro.experiments import tables


def test_table1_flits(benchmark):
    rows = benchmark(tables.table1_rows)
    assert ("64-byte READ", "1 FLITs", "5 FLITs") in rows


def test_table2_cooling(benchmark):
    rows = benchmark(tables.table2_rows)
    names = {r[0] for r in rows}
    assert names == {"passive", "low-end", "commodity", "high-end"}


def test_table3_mapping(benchmark):
    rows = benchmark(tables.table3_rows)
    assert any("atomicCAS" in r[2] for r in rows)


def test_table4_config(benchmark):
    rows = benchmark(tables.table4_rows)
    assert dict(rows)["HMC"].startswith("8 GB cube")
